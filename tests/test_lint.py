"""reprolint tests: per-rule fixtures (positive / negative / suppression)
plus engine mechanics (selection, JSON output, module scoping) and the
self-hosting guarantee that the shipped tree lints clean.
"""

from __future__ import annotations

import json
import pathlib
import textwrap

import pytest

from repro.lint import (
    LintEngine,
    findings_to_json,
    format_findings,
    lint_paths,
    lint_source,
    lint_sources,
    rule_names,
)
from repro.lint.engine import module_name_for

REPO_ROOT = pathlib.Path(__file__).parent.parent

SIM_MODULE = "repro.simulator.fixture"
CORE_MODULE = "repro.core.fixture"


def run(source: str, module: str = SIM_MODULE, select=None):
    return lint_source(textwrap.dedent(source), path="fixture.py",
                       module=module, select=select)


def rules_of(findings):
    return sorted({f.rule for f in findings})


# ----------------------------------------------------------------------
# DET001 — wall-clock
# ----------------------------------------------------------------------

class TestDET001:
    def test_positive_call(self):
        findings = run("""
            import time
            def f():
                return time.time()
        """)
        assert rules_of(findings) == ["DET001"]

    def test_positive_datetime_and_monotonic(self):
        findings = run("""
            import time, datetime
            def f():
                a = time.monotonic()
                b = datetime.datetime.now()
                return a, b
        """)
        assert len([f for f in findings if f.rule == "DET001"]) == 2

    def test_positive_bare_reference(self):
        # Passing the clock itself as a callback is just as dangerous.
        findings = run("""
            import time
            def f(items):
                return sorted(items, key=time.perf_counter)
        """)
        assert rules_of(findings) == ["DET001"]

    def test_negative_out_of_scope_module(self):
        findings = run("""
            import time
            def f():
                return time.time()
        """, module="benchmarks.bench_fixture")
        assert findings == []

    def test_negative_virtual_time(self):
        findings = run("""
            def f(sim):
                return sim.now
        """)
        assert findings == []

    def test_suppression(self):
        findings = run("""
            import time
            def f():
                return time.perf_counter()  # reprolint: disable=DET001 -- stats
        """)
        assert findings == []


# ----------------------------------------------------------------------
# DET002 — seeded randomness
# ----------------------------------------------------------------------

class TestDET002:
    def test_positive_stdlib_import(self):
        findings = run("import random\n", module="examples.fixture")
        assert rules_of(findings) == ["DET002"]

    def test_positive_global_numpy_rng(self):
        findings = run("""
            import numpy as np
            def f():
                np.random.seed(0)
                return np.random.rand(3)
        """, module="examples.fixture")
        assert len([f for f in findings if f.rule == "DET002"]) == 2

    def test_positive_unseeded_default_rng(self):
        findings = run("""
            import numpy as np
            def f():
                return np.random.default_rng()
        """)
        assert rules_of(findings) == ["DET002"]
        assert "seed" in findings[0].message

    def test_positive_module_level_rng(self):
        findings = run("""
            import numpy as np
            RNG = np.random.default_rng(0)
        """)
        assert rules_of(findings) == ["DET002"]
        assert "module-level" in findings[0].message

    def test_negative_seeded_in_function(self):
        findings = run("""
            import numpy as np
            def f(seed):
                rng = np.random.default_rng(seed)
                return rng.random(4)
        """)
        assert findings == []

    def test_suppression(self):
        findings = run("""
            import numpy as np
            def f():
                return np.random.default_rng()  # reprolint: disable=DET002 -- demo
        """)
        assert findings == []


# ----------------------------------------------------------------------
# DET003 — ordering-sensitive sinks
# ----------------------------------------------------------------------

class TestDET003:
    def test_positive_set_into_heappush(self):
        findings = run("""
            import heapq
            def f(items, heap):
                for x in set(items):
                    heapq.heappush(heap, x)
        """, module="repro.queueing.fixture")
        assert rules_of(findings) == ["DET003"]

    def test_positive_dict_view_into_schedule(self):
        findings = run("""
            def f(sim, callbacks):
                for cb in callbacks.values():
                    sim.schedule(0.0, cb)
        """)
        assert "DET003" in rules_of(findings)

    def test_positive_comprehension_into_hash_update(self):
        findings = run("""
            def f(h):
                h.update(str(x).encode() for x in {1, 2, 3})
        """, module="repro.core.fixture")
        assert "DET003" in rules_of(findings)

    def test_negative_sorted_iteration(self):
        findings = run("""
            import heapq
            def f(items, heap):
                for x in sorted(set(items)):
                    heapq.heappush(heap, x)
        """, module="repro.queueing.fixture")
        assert findings == []

    def test_negative_set_without_sink(self):
        findings = run("""
            def f(items):
                total = 0
                for x in set(items):
                    total += x
                return total
        """)
        assert findings == []

    def test_suppression(self):
        findings = run("""
            import heapq
            def f(items, heap):
                # reprolint: disable=DET003 -- items proven pre-sorted upstream
                for x in set(items):
                    heapq.heappush(heap, x)
        """, module="repro.queueing.fixture")
        assert findings == []


# ----------------------------------------------------------------------
# DET004 — fsum in hot paths
# ----------------------------------------------------------------------

class TestDET004:
    def test_positive_float_genexp(self):
        findings = run("""
            def f(records):
                return sum(r.exec_time for r in records)
        """, module="repro.latency.fixture")
        assert rules_of(findings) == ["DET004"]

    def test_positive_dict_view(self):
        findings = run("""
            def f(sums):
                return sum(sums.values())
        """, module="repro.analysis.breakdown")
        assert rules_of(findings) == ["DET004"]

    def test_negative_integer_counting(self):
        findings = run("""
            def f(records, input_lens):
                n = sum(1 for r in records)
                tok = sum(input_lens)
                return n + tok
        """, module="repro.latency.fixture")
        assert findings == []

    def test_negative_fsum(self):
        findings = run("""
            import math
            def f(records):
                return math.fsum(r.exec_time for r in records)
        """, module="repro.latency.fixture")
        assert findings == []

    def test_negative_out_of_scope_module(self):
        findings = run("""
            def f(records):
                return sum(r.exec_time for r in records)
        """, module="repro.serving.fixture")
        assert findings == []

    def test_suppression(self):
        findings = run("""
            def f(records):
                return sum(r.exec_time for r in records)  # reprolint: disable=DET004 -- bounded n
        """, module="repro.latency.fixture")
        assert findings == []


# ----------------------------------------------------------------------
# SIM001 — provably non-past scheduling
# ----------------------------------------------------------------------

class TestSIM001:
    def test_positive_unproven_delay(self):
        findings = run("""
            def f(sim, d, cb):
                sim.schedule(d, cb)
        """)
        assert rules_of(findings) == ["SIM001"]

    def test_negative_constant_and_max(self):
        findings = run("""
            def f(sim, t, cb):
                sim.schedule(1.5, cb)
                sim.schedule(max(0.0, t - sim.now), cb)
        """)
        assert findings == []

    def test_negative_asserted_delay(self):
        findings = run("""
            def f(sim, d, cb):
                assert d >= 0
                sim.schedule(d, cb)
        """)
        assert findings == []

    def test_negative_assignment_propagation(self):
        findings = run("""
            def f(sim, t, cb):
                delay = max(0.0, t - sim.now)
                sim.schedule(delay, cb)
        """)
        assert findings == []

    def test_positive_schedule_at_unproven(self):
        findings = run("""
            def f(sim, t, cb):
                sim.schedule_at(t, cb)
        """)
        assert rules_of(findings) == ["SIM001"]

    def test_negative_schedule_at_max_now(self):
        findings = run("""
            def f(sim, t, cb):
                sim.schedule_at(max(sim.now, t), cb)
        """)
        assert findings == []

    def test_negative_schedule_at_asserted(self):
        findings = run("""
            def f(sim, t, cb):
                assert t >= sim.now
                sim.schedule_at(t, cb)
        """)
        assert findings == []

    def test_negative_now_plus_nonneg(self):
        findings = run("""
            def f(sim, cb):
                start = sim.now
                duration = max(0.0, compute())
                sim.schedule_at(start + duration, cb)
        """)
        assert findings == []

    def test_negative_non_sim_receiver(self):
        findings = run("""
            def f(cron, d):
                cron.schedule(d, "job")
        """)
        assert findings == []

    def test_suppression(self):
        findings = run("""
            def f(sim, d, cb):
                # reprolint: disable=SIM001 -- d validated by caller
                sim.schedule(d, cb)
        """)
        assert findings == []


# ----------------------------------------------------------------------
# SIM002 — re-entrant mutation
# ----------------------------------------------------------------------

class TestSIM002:
    def test_positive_mutating_metric_callback(self):
        findings = run("""
            def f(registry, q):
                registry.counter("x", "desc", fn=lambda: q.pop())
        """)
        assert rules_of(findings) == ["SIM002"]

    def test_positive_mutating_recorder_callback(self):
        findings = run("""
            def f(recorder, sim, cb):
                recorder.register("gauge", lambda: sim.schedule(0.0, cb))
        """)
        assert "SIM002" in rules_of(findings)

    def test_positive_reentrant_run(self):
        findings = run("""
            def f(sim):
                def cb():
                    sim.run()
                sim.schedule(1.0, cb)
        """)
        assert rules_of(findings) == ["SIM002"]

    def test_negative_pure_callbacks(self):
        findings = run("""
            def f(registry, recorder, system, w):
                registry.counter("x", "desc", fn=lambda: len(w))
                registry.gauge("y", "desc", fn=lambda: system.unfinished)
                recorder.register("z", lambda: sum(w.values()) / max(1, len(w)))
        """)
        assert findings == []

    def test_suppression(self):
        findings = run("""
            def f(registry, q):
                # reprolint: disable=SIM002 -- drain is idempotent here
                registry.counter("x", "desc", fn=lambda: q.pop())
        """)
        assert findings == []


# ----------------------------------------------------------------------
# PAR001 — picklable tasks
# ----------------------------------------------------------------------

class TestPAR001:
    def test_positive_lambda_task_arg(self):
        findings = run("""
            def f(spec):
                return make_phase_task(spec, fn=lambda rate: rate * 2)
        """, module=CORE_MODULE)
        assert rules_of(findings) == ["PAR001"]

    def test_positive_nested_def_into_evaluator(self):
        findings = run("""
            def f(evaluator):
                def task():
                    return 1
                return evaluator.run([task])
        """, module=CORE_MODULE)
        assert rules_of(findings) == ["PAR001"]

    def test_negative_module_level_callable(self):
        findings = run("""
            def _task():
                return 1

            def f(evaluator):
                return evaluator.run([_task])
        """, module=CORE_MODULE)
        assert findings == []

    def test_negative_out_of_scope_module(self):
        findings = run("""
            def f(evaluator):
                return evaluator.run([lambda: 1])
        """, module="repro.serving.fixture")
        assert findings == []

    def test_suppression(self):
        findings = run("""
            def f(evaluator):
                # reprolint: disable=PAR001 -- serial-only evaluator in tests
                return evaluator.run([lambda: 1])
        """, module=CORE_MODULE)
        assert findings == []


# ----------------------------------------------------------------------
# OBS001 — allocation-light observability hot paths
# ----------------------------------------------------------------------

class TestOBS001:
    def test_positive_comprehension_in_record_method(self):
        findings = run("""
            class Profiler:
                def record_exec(self, batch):
                    self.events.append([r.id for r in batch])
        """)
        assert rules_of(findings) == ["OBS001"]

    def test_positive_genexp_in_observe(self):
        findings = run("""
            class Monitor:
                def observe(self, records):
                    self.total += sum(r.latency for r in records)
        """, select=["OBS001"])
        assert rules_of(findings) == ["OBS001"]

    def test_positive_dict_comprehension_in_span(self):
        findings = run("""
            class Tracer:
                def span(self, rid, kind, attrs):
                    self.spans.append({k: v for k, v in attrs})
        """, select=["OBS001"])
        assert rules_of(findings) == ["OBS001"]

    def test_positive_record_prefix_matches(self):
        findings = run("""
            class Engine:
                def record_transfer(self, blocks):
                    sizes = {b.size for b in blocks}
                    self.sizes.append(sizes)
        """, select=["OBS001"])
        assert rules_of(findings) == ["OBS001"]

    def test_positive_metric_callback_comprehension(self):
        findings = run("""
            def instrument(registry, queues):
                registry.gauge(
                    "depth", "total queue depth",
                    fn=lambda: sum(len(q) for q in queues.values()),
                )
        """, select=["OBS001"])
        assert rules_of(findings) == ["OBS001"]

    def test_negative_plain_loop_in_hot_path(self):
        findings = run("""
            class Profiler:
                def record_exec(self, instance, start, end, batch):
                    total = 0
                    for request in batch:
                        total += request.tokens
                    self.events.append((instance, start, end, total))
        """, select=["OBS001"])
        assert findings == []

    def test_negative_comprehension_in_cold_method(self):
        findings = run("""
            class Profiler:
                def summarize(self):
                    return [e for e in self.events]
        """, select=["OBS001"])
        assert findings == []

    def test_negative_free_function_not_flagged(self):
        findings = run("""
            def observe(values):
                return [v * 2 for v in values]
        """, select=["OBS001"])
        assert findings == []

    def test_negative_out_of_scope_module(self):
        findings = run("""
            class Profiler:
                def record_exec(self, batch):
                    return [r.id for r in batch]
        """, module="repro.analysis.fixture", select=["OBS001"])
        assert findings == []

    def test_nested_def_inside_hot_method_not_flagged(self):
        # A nested function is a deferred callback, not the per-event
        # path itself; it is judged on its own name.
        findings = run("""
            class Instance:
                def record_step(self, batch):
                    def finish():
                        return [r.id for r in batch]
                    self.on_done = finish
                    self.count += 1
        """, select=["OBS001"])
        assert findings == []

    def test_suppression(self):
        findings = run("""
            class Profiler:
                def record_exec(self, batch):
                    # reprolint: disable=OBS001 -- cold slow-path branch
                    self.events.append([r.id for r in batch])
        """, select=["OBS001"])
        assert findings == []


# ----------------------------------------------------------------------
# PERF001 — no sum() reachable from the decode step loop
# ----------------------------------------------------------------------

class TestPERF001:
    def test_positive_sum_in_root(self):
        findings = run("""
            class Instance:
                def _run_step(self):
                    contexts = [s.context_len for s in self._active]
                    return sum(contexts)
        """, select=["PERF001"])
        assert rules_of(findings) == ["PERF001"]

    def test_positive_sum_in_transitive_callee(self):
        findings = run("""
            class Instance:
                def _finish_step(self):
                    self._report()

                def _report(self):
                    self._tally()

                def _tally(self):
                    return sum(s.tokens for s in self._active)
        """, select=["PERF001"])
        assert rules_of(findings) == ["PERF001"]

    def test_positive_sum_in_nested_closure_of_root(self):
        findings = run("""
            class Instance:
                def _kv_safe_steps(self, limit):
                    def extra(growth):
                        return sum(t + growth for t in self._held)
                    return extra(limit)
        """, select=["PERF001"])
        assert rules_of(findings) == ["PERF001"]

    def test_negative_sum_in_unreachable_function(self):
        findings = run("""
            class Instance:
                def _run_step(self):
                    self._count += 1

                def summarize(self):
                    return sum(self._latencies)
        """, select=["PERF001"])
        assert findings == []

    def test_negative_explicit_loop_in_root(self):
        findings = run("""
            class Instance:
                def _materialize(self, upto):
                    total = 0
                    for state in self._batch:
                        total += state.tokens
                    return total
        """, select=["PERF001"])
        assert findings == []

    def test_negative_out_of_scope_module(self):
        findings = run("""
            def _run_step(batch):
                return sum(b.tokens for b in batch)
        """, module="repro.analysis.fixture", select=["PERF001"])
        assert findings == []

    def test_suppression(self):
        findings = run("""
            class Instance:
                def _sync_to_now(self):
                    # reprolint: disable=PERF001 -- cold failure branch
                    return sum(self._pending)
        """, select=["PERF001"])
        assert findings == []


# ----------------------------------------------------------------------
# Engine mechanics
# ----------------------------------------------------------------------

class TestEngine:
    def test_select_filters_rules(self):
        source = """
            import time, random
            def f():
                return time.time()
        """
        only_det002 = run(source, select=["DET002"])
        assert rules_of(only_det002) == ["DET002"]
        only_det001 = run(source, select=["DET001"])
        assert rules_of(only_det001) == ["DET001"]

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            LintEngine(select=["NOPE42"])

    def test_syntax_error_reported_not_raised(self):
        findings = lint_source("def f(:\n", path="bad.py")
        assert findings and findings[0].rule == "E999"

    def test_file_level_suppression(self):
        findings = run("""
            # reprolint: disable-file=DET001
            import time
            def f():
                return time.time()
        """)
        assert findings == []

    def test_findings_sorted_and_deterministic(self):
        source = """
            import time
            def f():
                return time.time(), time.monotonic()
        """
        first = run(source)
        second = run(source)
        assert first == second == sorted(first)

    def test_json_output_shape(self):
        findings = run("""
            import time
            def f():
                return time.time()
        """)
        payload = json.loads(findings_to_json(findings, files_checked=1))
        assert payload["tool"] == "reprolint"
        assert payload["files_checked"] == 1
        assert payload["counts"] == {"DET001": 1}
        entry = payload["findings"][0]
        assert set(entry) == {"rule", "message", "path", "line", "col"}

    def test_human_output(self):
        findings = run("""
            import time
            def f():
                return time.time()
        """)
        text = format_findings(findings)
        assert "DET001" in text and "fixture.py" in text
        assert format_findings([]) == "reprolint: clean"

    def test_module_name_mapping(self):
        assert module_name_for(
            pathlib.Path("src/repro/simulator/events.py")
        ) == "repro.simulator.events"
        assert module_name_for(
            pathlib.Path("src/repro/lint/__init__.py")
        ) == "repro.lint"
        assert module_name_for(
            pathlib.Path("tests/test_lint.py")
        ) == "tests.test_lint"

    def test_rule_registry_complete(self):
        assert rule_names() == [
            "DET001", "DET002", "DET003", "DET004",
            "OBS001", "PAR001", "PERF001", "SIM001", "SIM002",
            "TS001", "TS002", "UNIT001",
        ]


# ----------------------------------------------------------------------
# Cross-module reachability: regression tests for the whole-program
# upgrade. Each case is invisible to the old intra-module graphs —
# the offending code lives in a *different* module than the hot entry
# point — and is caught only via the shared project call graph.
# ----------------------------------------------------------------------

def run_modules(select=None, **sources):
    dedented = {
        module.replace("__", "."): textwrap.dedent(text)
        for module, text in sources.items()
    }
    return lint_sources(dedented, select=select)


class TestCrossModuleReachability:
    def test_perf001_sum_in_other_module_called_from_run_step(self):
        findings = run_modules(
            select=["PERF001"],
            repro__simulator__inst="""
                from repro.latency_model.steps import step_time

                class Instance:
                    def _run_step(self):
                        return step_time(self._lens)
            """,
            repro__latency_model__steps="""
                def step_time(lens):
                    return sum(lens) * 0.001
            """,
        )
        assert rules_of(findings) == ["PERF001"]
        assert findings[0].path == "<repro.latency_model.steps>"

    def test_perf001_same_fixture_clean_without_hot_caller(self):
        findings = run_modules(
            select=["PERF001"],
            repro__latency_model__steps="""
                def step_time(lens):
                    return sum(lens) * 0.001
            """,
        )
        assert findings == []

    def test_det004_float_sum_in_helper_module_feeding_hot_path(self):
        findings = run_modules(
            select=["DET004"],
            repro__latency__report="""
                from repro.serving.rollup import total_time

                def report(records):
                    return total_time(records)
            """,
            repro__serving__rollup="""
                def total_time(records):
                    return sum(r.exec_time for r in records)
            """,
        )
        assert rules_of(findings) == ["DET004"]
        assert findings[0].path == "<repro.serving.rollup>"

    def test_det004_same_helper_clean_without_hot_caller(self):
        findings = run_modules(
            select=["DET004"],
            repro__serving__rollup="""
                def total_time(records):
                    return sum(r.exec_time for r in records)
            """,
        )
        assert findings == []

    def test_obs001_comprehension_in_helper_called_from_record(self):
        findings = run_modules(
            select=["OBS001"],
            repro__simulator__prof="""
                from repro.analysis.agg import snapshot

                class Profiler:
                    def record_exec(self, batch):
                        self.events.append(snapshot(batch))
            """,
            repro__analysis__agg="""
                def snapshot(batch):
                    return [r.id for r in batch]
            """,
        )
        assert rules_of(findings) == ["OBS001"]
        assert findings[0].path == "<repro.analysis.agg>"
        assert "reachable from a per-event hot path" in findings[0].message

    def test_obs001_same_helper_clean_without_hot_caller(self):
        findings = run_modules(
            select=["OBS001"],
            repro__analysis__agg="""
                def snapshot(batch):
                    return [r.id for r in batch]
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# Self-hosting: the shipped tree is clean
# ----------------------------------------------------------------------

class TestSelfHosting:
    def test_src_lints_clean(self):
        findings, checked = lint_paths([str(REPO_ROOT / "src")])
        assert checked > 50
        assert findings == [], format_findings(findings)

    def test_tests_lint_clean(self):
        findings, _checked = lint_paths([str(REPO_ROOT / "tests")])
        assert findings == [], format_findings(findings)
