"""Tests for the pluggable scheduling layer (:mod:`repro.scheduling`).

Covers the three policy families (queue, batch-shaping, dispatch), the
frozen :class:`SchedulingConfig` threading, search-fingerprint
stability, and the KV-release guarantees of instance failure.
"""

import numpy as np
import pytest

from repro.core.search import fingerprint
from repro.core.simulate import phase_trial_setup
from repro.latency import ParallelismConfig
from repro.scheduling import (
    BATCH_POLICIES,
    DEFAULT_SCHEDULING,
    DISPATCH_POLICIES,
    QUEUE_POLICIES,
    ChunkedBatch,
    EDFQueue,
    SchedulingConfig,
    TokenBudgetBatch,
    make_batch_policy,
    make_dispatch_policy,
    make_queue_policy,
)
from repro.serving import ColocatedSystem, DisaggregatedSystem, simulate_trace
from repro.serving.dispatch import Dispatcher
from repro.simulator import (
    InstanceSpec,
    PrefillInstance,
    RequestState,
    SimSanitizer,
    Simulation,
)
from repro.workload import SHAREGPT, SLO, generate_trace

from collections import deque


def make_states(lens_and_outs, start_id=0, arrival=0.0):
    from repro.workload import Request

    return [
        RequestState(
            request=Request(
                request_id=start_id + i,
                arrival_time=arrival,
                input_len=inp,
                output_len=out,
            )
        )
        for i, (inp, out) in enumerate(lens_and_outs)
    ]


class TestSchedulingConfig:
    def test_default_is_default(self):
        assert SchedulingConfig().is_default()
        assert DEFAULT_SCHEDULING.is_default()

    def test_non_default(self):
        assert not SchedulingConfig(queue_policy="edf").is_default()
        assert not SchedulingConfig(batch_policy="chunked").is_default()
        assert not SchedulingConfig(dispatch_policy="random").is_default()

    def test_frozen(self):
        cfg = SchedulingConfig()
        with pytest.raises(Exception):
            cfg.queue_policy = "sjf"  # type: ignore[misc]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queue_policy": "lifo"},
            {"batch_policy": "continuous"},
            {"dispatch_policy": "sticky"},
            {"sjf_aging": -1.0},
            {"batch_token_limit": 0},
            {"edf_default_deadline": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SchedulingConfig(**kwargs)

    def test_policy_tuples_cover_factories(self):
        for q in QUEUE_POLICIES:
            assert make_queue_policy(q).name == q
        for b in BATCH_POLICIES:
            assert make_batch_policy(b).name == b
        for d in DISPATCH_POLICIES:
            p = make_dispatch_policy(
                d, load_fn=lambda i: 0, rng=np.random.default_rng(0)
            )
            assert p.name == d


class TestEDFQueue:
    def test_reorders_by_deadline(self):
        states = make_states([(100, 2), (100, 2), (100, 2)])
        states[0].deadline = 9.0
        states[1].deadline = 1.0
        states[2].deadline = 5.0
        q = EDFQueue().reorder(deque(states), now=0.0)
        assert [s.request_id for s in q] == [1, 2, 0]

    def test_missing_deadline_uses_arrival_plus_default(self):
        early = make_states([(100, 2)], start_id=0, arrival=0.0)[0]
        late = make_states([(100, 2)], start_id=1, arrival=50.0)[0]
        urgent = make_states([(100, 2)], start_id=2, arrival=60.0)[0]
        urgent.deadline = 0.5
        q = EDFQueue(default_deadline=10.0).reorder(
            deque([late, early, urgent]), now=0.0
        )
        assert [s.request_id for s in q] == [2, 0, 1]

    def test_stable_for_ties(self):
        states = make_states([(100, 2), (200, 2), (300, 2)])
        for s in states:
            s.deadline = 4.0
        q = EDFQueue().reorder(deque(states), now=0.0)
        assert [s.request_id for s in q] == [0, 1, 2]

    def test_end_to_end_edf_order(self, tiny_spec):
        """EDF runs the tight-deadline request first despite FCFS order."""
        sim = Simulation()
        done = []
        inst = PrefillInstance(
            sim,
            tiny_spec,
            on_prefill_done=lambda s: done.append(s.request_id),
            scheduling=SchedulingConfig(queue_policy="edf"),
            batch_token_limit=tiny_spec.model.max_seq_len,
        )
        big = tiny_spec.model.max_seq_len  # one request per batch
        states = make_states([(big, 2), (big, 2), (big, 2)])
        states[0].deadline = 100.0
        states[1].deadline = 50.0
        states[2].deadline = 1.0
        for s in states:
            inst.submit(s)
        sim.run()
        # Batch formation is deferred to the event loop, so all three
        # are queued by the first reorder: strict deadline order wins
        # over FCFS submission order.
        assert done == [2, 1, 0]


class TestBatchPolicies:
    def _kv(self, tiny_spec):
        return tiny_spec.make_kv_manager()

    def test_token_budget_matches_legacy_loop(self, tiny_spec):
        kv = self._kv(tiny_spec)
        queue = deque(make_states([(100, 2), (100, 2), (100, 2)]))
        batch = TokenBudgetBatch().form_prefill(queue, kv, limit=256)
        assert [c.state.request_id for c in batch] == [0, 1]
        assert all(c.first and c.final for c in batch)
        assert len(queue) == 1

    def test_chunked_bounds_every_batch(self, tiny_spec):
        kv = self._kv(tiny_spec)
        policy = ChunkedBatch()
        queue = deque(make_states([(1000, 2), (300, 2)]))
        limit = 256
        flat = []
        while queue:
            batch = policy.form_prefill(queue, kv, limit=limit)
            assert batch, "policy must make progress"
            assert sum(c.tokens for c in batch) <= limit
            flat.extend(
                (c.state.request_id, c.tokens, c.first, c.final)
                for c in batch
            )
        # Request 0 (1000 tokens) splits as 256+256+256+232; the final
        # 232-token chunk leaves 24 tokens of room that request 1's
        # first chunk fills in the same batch.
        chunks0 = [(t, f, fi) for (rid, t, f, fi) in flat if rid == 0]
        assert [t for (t, _, _) in chunks0] == [256, 256, 256, 232]
        assert [f for (_, f, _) in chunks0] == [True, False, False, False]
        assert [fi for (_, _, fi) in chunks0] == [False, False, False, True]
        assert sum(t for (rid, t, _, _) in flat if rid == 1) == 300

    def test_chunked_allocates_full_prompt_upfront(self, tiny_spec):
        kv = self._kv(tiny_spec)
        policy = ChunkedBatch()
        queue = deque(make_states([(1000, 2)]))
        policy.form_prefill(queue, kv, limit=256)
        assert kv.tokens_of(0) == 1000

    def test_chunked_reset_clears_progress(self, tiny_spec):
        kv = self._kv(tiny_spec)
        policy = ChunkedBatch()
        queue = deque(make_states([(1000, 2)]))
        policy.form_prefill(queue, kv, limit=256)
        policy.reset()
        assert policy._progress == {}

    def test_chunked_end_to_end_single_first_token(self, tiny_spec):
        """Chunked prefill completes every request exactly once."""
        sim = Simulation()
        done = []
        inst = PrefillInstance(
            sim,
            tiny_spec,
            on_prefill_done=lambda s: done.append(s.request_id),
            scheduling=SchedulingConfig(batch_policy="chunked"),
            batch_token_limit=256,
        )
        for s in make_states([(1000, 2), (100, 2), (700, 2)]):
            inst.submit(s)
        sim.run()
        assert sorted(done) == [0, 1, 2]
        assert len(done) == 3  # one completion per request

    def test_admit_decode_caps(self):
        p = TokenBudgetBatch()
        assert p.admit_decode(0, 4)
        assert p.admit_decode(3, 4)
        assert not p.admit_decode(4, 4)


class _FakeInstance:
    def __init__(self, name):
        self.name = name
        self.load = 0


class TestDispatchPolicies:
    def test_round_robin_survives_pool_shrink(self):
        pool = [_FakeInstance(i) for i in range(3)]
        p = make_dispatch_policy("round_robin", load_fn=lambda i: i.load)
        for _ in range(4):  # advance the cursor past index 0
            p.select(pool)
        pool.pop()  # shrink from 3 to 2
        chosen = [p.select(pool) for _ in range(6)]
        assert all(c in pool for c in chosen)
        # Still alternates over the survivors.
        assert {c.name for c in chosen} == {0, 1}

    @pytest.mark.parametrize("policy", ["random", "power_of_two"])
    def test_seeded_rng_determinism(self, policy):
        def run(seed):
            pool = [_FakeInstance(i) for i in range(8)]
            p = make_dispatch_policy(
                policy, load_fn=lambda i: i.load,
                rng=np.random.default_rng(seed),
            )
            picks = []
            for _ in range(100):
                inst = p.select(pool)
                inst.load += 1
                picks.append(inst.name)
            return picks

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_power_of_two_beats_random_on_tail(self):
        def max_load(policy):
            pool = [_FakeInstance(i) for i in range(8)]
            p = make_dispatch_policy(
                policy, load_fn=lambda i: i.load,
                rng=np.random.default_rng(0),
            )
            for _ in range(400):
                p.select(pool).load += 1
            return max(i.load for i in pool)

        # The classic balls-into-bins result: two choices collapse the
        # tail. With 400 balls into 8 bins the gap is decisive.
        assert max_load("power_of_two") < max_load("random")

    def test_random_policies_require_rng(self):
        for policy in ("random", "power_of_two"):
            with pytest.raises(ValueError, match="rng"):
                make_dispatch_policy(policy, load_fn=lambda i: i.load)

    def test_dispatcher_raises_before_counting(self):
        d = Dispatcher("least_loaded", load_fn=lambda i: i.load)
        with pytest.raises(ValueError):
            d.choose([])
        assert d.dispatches == 0  # the failed call must not count

    def test_least_loaded_ties_break_first(self):
        pool = [_FakeInstance(i) for i in range(3)]
        p = make_dispatch_policy("least_loaded", load_fn=lambda i: i.load)
        assert p.select(pool).name == 0


class TestFailureReleasesKV:
    def test_prefill_fail_frees_all_blocks(self, tiny_spec):
        sim = Simulation()
        inst = PrefillInstance(sim, tiny_spec, on_prefill_done=lambda s: None)
        for s in make_states([(500, 2), (500, 2), (500, 2)]):
            inst.submit(s)
        sim.run(until=1e-6)  # first batch in flight, rest queued
        inst.fail()
        assert inst._kv.used_blocks == 0
        assert inst._kv.holders() == []

    def test_chunked_fail_mid_prompt_frees_blocks(self, tiny_spec):
        sim = Simulation()
        inst = PrefillInstance(
            sim, tiny_spec, on_prefill_done=lambda s: None,
            scheduling=SchedulingConfig(batch_policy="chunked"),
            batch_token_limit=128,
        )
        for s in make_states([(1000, 2), (600, 2)]):
            inst.submit(s)
        sim.run(until=1e-6)  # head prompt mid-chunk: queued AND in flight
        victims = inst.fail()
        assert inst._kv.used_blocks == 0
        assert len(victims) == 2  # deduped despite dual residency

    def test_sanitizer_quiesce_after_fault_injection(self, tiny_spec, rng):
        trace = generate_trace(SHAREGPT, rate=8.0, num_requests=60, rng=rng)
        sanitizer = SimSanitizer(strict=False)
        sim = sanitizer.simulation()
        system = DisaggregatedSystem(
            sim, tiny_spec, tiny_spec, num_prefill=2, num_decode=2
        )
        sanitizer.watch_system(system)
        for req in trace:
            sim.schedule_at(req.arrival_time, lambda r=req: system.submit(r))
        sim.schedule(trace.duration / 3, lambda: system.fail_prefill("prefill-0"))
        sim.schedule(trace.duration / 2, lambda: system.fail_decode("decode-0"))
        sim.run()
        sanitizer.check_quiesce()
        assert sanitizer.ok, sanitizer.report()

    def test_colocated_fail_replica(self, tiny_spec, rng):
        trace = generate_trace(SHAREGPT, rate=8.0, num_requests=60, rng=rng)
        sim = Simulation()
        system = ColocatedSystem(sim, tiny_spec, num_replicas=2)
        for req in trace:
            sim.schedule_at(req.arrival_time, lambda r=req: system.submit(r))
        sim.schedule(
            trace.duration / 2, lambda: system.fail_replica("colocated-0")
        )
        sim.run()
        assert system.failures == 1
        assert len(system.instances) == 1
        assert len(system.records) == len(trace)

    def test_colocated_fail_unknown_and_last(self, tiny_spec):
        sim = Simulation()
        system = ColocatedSystem(sim, tiny_spec, num_replicas=2)
        with pytest.raises(KeyError):
            system.fail_replica("nope")
        system.fail_replica("colocated-0")
        with pytest.raises(RuntimeError):
            system.fail_replica("colocated-1")


class TestSystemsWithPolicies:
    @pytest.mark.parametrize(
        "cfg",
        [
            SchedulingConfig(queue_policy="edf"),
            SchedulingConfig(queue_policy="sjf"),
            SchedulingConfig(batch_policy="chunked"),
            SchedulingConfig(dispatch_policy="round_robin"),
            SchedulingConfig(dispatch_policy="power_of_two"),
        ],
        ids=lambda c: f"{c.queue_policy}-{c.batch_policy}-{c.dispatch_policy}",
    )
    def test_disaggregated_completes_under_every_policy(
        self, tiny_spec, rng, cfg
    ):
        trace = generate_trace(SHAREGPT, rate=5.0, num_requests=50, rng=rng)
        sim = Simulation()
        system = DisaggregatedSystem(
            sim, tiny_spec, tiny_spec, num_prefill=2, num_decode=2,
            scheduling=cfg, rng=np.random.default_rng(0),
        )
        result = simulate_trace(system, trace)
        assert result.completed == len(trace)

    def test_default_config_matches_no_config(self, tiny_spec, rng):
        """scheduling=default must be byte-identical to scheduling=None."""
        def run(scheduling):
            trace = generate_trace(
                SHAREGPT, rate=5.0, num_requests=50,
                rng=np.random.default_rng(3),
            )
            sim = Simulation()
            system = DisaggregatedSystem(
                sim, tiny_spec, tiny_spec, num_prefill=2, num_decode=2,
                scheduling=scheduling,
            )
            result = simulate_trace(system, trace)
            return [
                (r.request_id, r.ttft, r.tpot, r.finish_time)
                for r in result.records
            ]

        assert run(None) == run(SchedulingConfig())


class TestFingerprintStability:
    def _slo(self):
        return SLO(ttft=4.0, tpot=0.2)

    def test_default_scheduling_preserves_fingerprint(self, tiny_spec):
        base, _ = phase_trial_setup("prefill", tiny_spec, self._slo())
        none_cfg, _ = phase_trial_setup(
            "prefill", tiny_spec, self._slo(), scheduling=None
        )
        default_cfg, _ = phase_trial_setup(
            "prefill", tiny_spec, self._slo(), scheduling=SchedulingConfig()
        )
        assert fingerprint(base) == fingerprint(none_cfg)
        assert fingerprint(base) == fingerprint(default_cfg)

    def test_non_default_scheduling_changes_fingerprint(self, tiny_spec):
        base, _ = phase_trial_setup("prefill", tiny_spec, self._slo())
        edf, _ = phase_trial_setup(
            "prefill", tiny_spec, self._slo(),
            scheduling=SchedulingConfig(queue_policy="edf"),
        )
        sjf, _ = phase_trial_setup(
            "prefill", tiny_spec, self._slo(),
            scheduling=SchedulingConfig(queue_policy="sjf"),
        )
        assert fingerprint(base) != fingerprint(edf)
        assert fingerprint(edf) != fingerprint(sjf)
