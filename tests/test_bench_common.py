"""Tests for the benchmark helper layer (no expensive searches)."""

import pytest

from benchmarks.common import (
    VLLM_TP,
    _placement_from_json,
    _placement_to_json,
    goodput_from_sweep,
    vllm_system_factory,
)
from repro.analysis import AttainmentReport
from repro.core import PhasePlan, Placement
from repro.latency import ParallelismConfig
from repro.simulator import Simulation


def report(total):
    return AttainmentReport(total=total, ttft_only=total, tpot_only=total, num_requests=10)


class TestGoodputFromSweep:
    def test_picks_last_passing_rate(self):
        rates = [1.0, 2.0, 3.0, 4.0]
        reports = [report(1.0), report(0.95), report(0.85), report(0.2)]
        assert goodput_from_sweep(rates, reports) == 2.0

    def test_zero_when_nothing_passes(self):
        assert goodput_from_sweep([1.0], [report(0.5)]) == 0.0

    def test_non_monotone_curves(self):
        # A noisy dip below target mid-sweep does not hide a later pass.
        rates = [1.0, 2.0, 3.0]
        reports = [report(0.95), report(0.89), report(0.91)]
        assert goodput_from_sweep(rates, reports) == 3.0


class TestPlacementSerialization:
    def test_roundtrip(self):
        placement = Placement(
            prefill=PhasePlan(ParallelismConfig(3, 2), 2, 4.5),
            decode=PhasePlan(ParallelismConfig(4, 2), 1, 9.0),
            kv_transfer_intra_node=True,
        )
        restored = _placement_from_json(_placement_to_json(placement))
        assert restored == placement

    def test_json_is_plain_data(self):
        placement = Placement(
            prefill=PhasePlan(ParallelismConfig(1, 1), 1, 1.0),
            decode=PhasePlan(ParallelismConfig(1, 1), 1, 1.0),
        )
        import json

        blob = json.dumps(_placement_to_json(placement))
        assert "prefill" in blob


class TestVLLMBaseline:
    def test_paper_tp_settings(self):
        # §6.1: intra-op 1, 4, 8 for the three OPT models.
        assert VLLM_TP == {"opt-13b": 1, "opt-66b": 4, "opt-175b": 8}

    @pytest.mark.parametrize("model_name", ["opt-13b", "opt-66b"])
    def test_factory_gpu_accounting(self, model_name):
        factory, gpus = vllm_system_factory(model_name, num_replicas=2)
        assert gpus == VLLM_TP[model_name] * 2
        system = factory(Simulation())
        assert system.num_gpus() == gpus


class TestTrajectoryChecker:
    """The CI perf-trajectory guard generalizes across report shapes."""

    @staticmethod
    def _write(tmp_path, name, payload):
        import json

        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def _check(self, tmp_path, baseline, fresh, extra=()):
        from benchmarks.check_search_trajectory import main

        base = self._write(tmp_path, "base.json", baseline)
        new = self._write(tmp_path, "fresh.json", fresh)
        return main(["--baseline", base, "--fresh", new, *extra])

    def test_search_shape_ok(self, tmp_path):
        report = {
            "placement_parity": True,
            "runs": [{"workers": 1, "speedup_vs_baseline": 2.0}],
        }
        assert self._check(tmp_path, report, report) == 0

    def test_kernel_shape_ok(self, tmp_path):
        report = {
            "record_parity": True,
            "placement_parity": True,
            "runs": [
                {"scenario": "decode_heavy", "speedup_vs_baseline": 3.5},
                {"scenario": "fig12_sweep", "speedup_vs_baseline": 2.0},
            ],
        }
        assert self._check(tmp_path, report, report) == 0

    def test_regression_fails(self, tmp_path):
        base = {
            "record_parity": True,
            "runs": [{"scenario": "decode_heavy", "speedup_vs_baseline": 4.0}],
        }
        fresh = {
            "record_parity": True,
            "runs": [{"scenario": "decode_heavy", "speedup_vs_baseline": 2.0}],
        }
        assert self._check(tmp_path, base, fresh) == 1

    def test_within_tolerance_passes(self, tmp_path):
        base = {
            "record_parity": True,
            "runs": [{"scenario": "decode_heavy", "speedup_vs_baseline": 4.0}],
        }
        fresh = {
            "record_parity": True,
            "runs": [{"scenario": "decode_heavy", "speedup_vs_baseline": 3.5}],
        }
        assert self._check(tmp_path, base, fresh) == 0

    def test_any_parity_flag_false_fails(self, tmp_path):
        base = {
            "record_parity": True,
            "runs": [{"scenario": "decode_heavy", "speedup_vs_baseline": 3.0}],
        }
        fresh = dict(base, record_parity=False)
        assert self._check(tmp_path, base, fresh) == 1

    def test_multiple_pairs(self, tmp_path):
        from benchmarks.check_search_trajectory import main

        search = {
            "placement_parity": True,
            "runs": [{"workers": 1, "speedup_vs_baseline": 2.0}],
        }
        kernel = {
            "record_parity": True,
            "runs": [{"scenario": "decode_heavy", "speedup_vs_baseline": 3.0}],
        }
        s_base = self._write(tmp_path, "s_base.json", search)
        s_new = self._write(tmp_path, "s_new.json", search)
        k_base = self._write(tmp_path, "k_base.json", kernel)
        k_new = self._write(tmp_path, "k_new.json",
                            dict(kernel, runs=[{"scenario": "decode_heavy",
                                                "speedup_vs_baseline": 1.0}]))
        assert main(["--baseline", s_base, "--fresh", s_new,
                     "--baseline", k_base, "--fresh", k_new]) == 1
        assert main(["--baseline", s_base, "--fresh", s_new]) == 0

    def test_mismatched_pair_counts(self, tmp_path):
        from benchmarks.check_search_trajectory import main

        report = {
            "placement_parity": True,
            "runs": [{"workers": 1, "speedup_vs_baseline": 2.0}],
        }
        base = self._write(tmp_path, "b.json", report)
        new = self._write(tmp_path, "f.json", report)
        assert main(["--baseline", base, "--baseline", base,
                     "--fresh", new]) == 2
