"""Property-based tests for trace invariants across random workloads.

For arbitrary small workloads and either serving architecture, the span
timeline must be well-formed: spans non-negative and inside the request's
[arrival, completion] window, stage boundaries monotone, exactly one
prefill execution and ``output_len`` decode-step spans per completed
request, TTFT derivable from spans equal to what the percentile layer
reports, and KV-transfer spans appearing only under disaggregation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import request_breakdowns, ttft_percentile
from repro.models import ModelArchitecture
from repro.serving import ColocatedSystem, DisaggregatedSystem, simulate_trace
from repro.simulator import (
    InstanceSpec,
    Simulation,
    SpanKind,
    Tracer,
    spans_by_request,
)
from repro.workload import Request, Trace

MODEL = ModelArchitecture("prop-trace", 8, 1024, 8, 4096)

requests_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=3.0),   # arrival
        st.integers(min_value=1, max_value=512),   # input_len
        st.integers(min_value=1, max_value=24),    # output_len
    ),
    min_size=1,
    max_size=12,
)


def make_trace(raw):
    return Trace(
        requests=[
            Request(request_id=i, arrival_time=t, input_len=inp, output_len=out)
            for i, (t, inp, out) in enumerate(raw)
        ]
    )


def run_traced(system_kind, trace, **kwargs):
    sim = Simulation()
    tracer = Tracer()
    spec = InstanceSpec(model=MODEL)
    if system_kind == "disaggregated":
        system = DisaggregatedSystem(sim, spec, spec, tracer=tracer, **kwargs)
    else:
        system = ColocatedSystem(sim, spec, tracer=tracer, **kwargs)
    result = simulate_trace(system, trace, max_events=500_000)
    return result, tracer


def check_common_invariants(trace, result, tracer):
    """Invariants shared by every serving architecture."""
    assert result.unfinished == 0
    assert not tracer.open_spans()
    by_origin = {r.request_id: r for r in trace}
    by_record = {r.request_id: r for r in result.records}
    grouped = spans_by_request(tracer.spans)
    assert sorted(grouped) == sorted(by_origin)
    for rid, spans in grouped.items():
        origin = by_origin[rid]
        record = by_record[rid]
        kinds = [s.kind for s in spans]
        # Exactly one terminal pair, one prefill execution.
        assert kinds.count(SpanKind.ARRIVAL) == 1
        assert kinds.count(SpanKind.COMPLETION) == 1
        assert kinds.count(SpanKind.PREFILL_EXEC) == 1
        arrival = next(s for s in spans if s.kind == SpanKind.ARRIVAL).start
        completion = next(s for s in spans if s.kind == SpanKind.COMPLETION).end
        assert arrival == origin.arrival_time
        # Every span is non-negative and inside [arrival, completion].
        for span in spans:
            assert span.duration >= 0.0
            assert span.start >= arrival - 1e-12
            assert span.end <= completion + 1e-12
        # One decode_step per output token, indices 0..output_len-1, and
        # token spans ordered in time.
        steps = [s for s in spans if s.kind == SpanKind.DECODE_STEP]
        assert len(steps) == origin.output_len
        assert [s.token_index for s in steps] == list(range(origin.output_len))
        for prev, cur in zip(steps, steps[1:]):
            assert cur.end >= prev.end
        # Spans are well-nested: stage boundaries never move backwards.
        boundaries = [
            s.end
            for s in spans
            if s.kind
            in (
                SpanKind.PREFILL_QUEUE,
                SpanKind.PREFILL_EXEC,
                SpanKind.KV_TRANSFER,
                SpanKind.DECODE_QUEUE,
            )
        ]
        assert boundaries == sorted(boundaries)
        # TTFT from spans equals the record's TTFT.
        first_token = steps[0].end
        assert abs((first_token - arrival) - record.ttft) < 1e-12
        assert abs(completion - record.finish_time) < 1e-12


class TestTraceProperties:
    @given(
        raw=requests_strategy,
        n_p=st.integers(min_value=1, max_value=2),
        n_d=st.integers(min_value=1, max_value=2),
        mode=st.sampled_from(["pull", "push"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_disaggregated_invariants(self, raw, n_p, n_d, mode):
        trace = make_trace(raw)
        result, tracer = run_traced(
            "disaggregated", trace,
            num_prefill=n_p, num_decode=n_d, transfer_mode=mode,
        )
        check_common_invariants(trace, result, tracer)
        # kv_transfer exists exactly for multi-token requests, and every
        # multi-token request also queues for decode.
        by_id = {r.request_id: r for r in trace}
        for rid, spans in spans_by_request(tracer.spans).items():
            kinds = [s.kind for s in spans]
            expected = 1 if by_id[rid].output_len > 1 else 0
            assert kinds.count(SpanKind.KV_TRANSFER) == expected
            assert kinds.count(SpanKind.DECODE_QUEUE) == expected

    @given(
        raw=requests_strategy,
        policy=st.sampled_from(["prefill_priority", "combined", "chunked"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_colocated_invariants(self, raw, policy):
        trace = make_trace(raw)
        result, tracer = run_traced("colocated", trace, policy=policy)
        check_common_invariants(trace, result, tracer)
        # Colocation has no KV migration: transfer spans are exclusive
        # to disaggregated mode.
        assert all(s.kind != SpanKind.KV_TRANSFER for s in tracer.spans)

    @given(raw=requests_strategy)
    @settings(max_examples=25, deadline=None)
    def test_ttft_percentiles_match_span_derivation(self, raw):
        trace = make_trace(raw)
        result, tracer = run_traced("disaggregated", trace)
        grouped = spans_by_request(tracer.spans)
        span_ttfts = []
        for rid in sorted(grouped):
            spans = grouped[rid]
            arrival = next(s for s in spans if s.kind == SpanKind.ARRIVAL).start
            first = min(
                s.end for s in spans
                if s.kind == SpanKind.DECODE_STEP and s.token_index == 0
            )
            span_ttfts.append(first - arrival)
        records = sorted(result.records, key=lambda r: r.request_id)
        record_ttfts = [r.ttft for r in records]
        assert np.allclose(span_ttfts, record_ttfts, atol=1e-12, rtol=0.0)
        for q in (50.0, 90.0, 99.0):
            assert float(np.percentile(span_ttfts, q)) == ttft_percentile(
                result.records, q
            )

    @given(raw=requests_strategy)
    @settings(max_examples=25, deadline=None)
    def test_stage_sums_reconcile_with_e2e(self, raw):
        trace = make_trace(raw)
        result, tracer = run_traced("disaggregated", trace)
        by_id = {r.request_id: r.end_to_end_latency for r in result.records}
        for b in request_breakdowns(tracer.spans):
            assert abs(b.stage_sum - by_id[b.request_id]) < 1e-9
