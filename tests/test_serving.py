"""Tests for serving systems: colocated, disaggregated, phase-only, dispatch."""

import numpy as np
import pytest

from repro.hardware import ETHERNET_25G, NVLINK
from repro.latency import ParallelismConfig
from repro.serving import (
    ColocatedSystem,
    DecodeOnlySystem,
    Dispatcher,
    DisaggregatedSystem,
    PrefillOnlySystem,
    simulate_trace,
)
from repro.simulator import InstanceSpec, Simulation
from repro.workload import Request, Trace, fixed_length_dataset, generate_trace


@pytest.fixture
def small_trace(rng):
    return generate_trace(fixed_length_dataset(128, 8), rate=5.0, num_requests=40, rng=rng)


class TestDispatcher:
    def test_least_loaded(self):
        class Inst:
            def __init__(self, load):
                self.load = load

        d = Dispatcher("least_loaded", load_fn=lambda inst: inst.load)
        instances = [Inst(3), Inst(1), Inst(2)]
        assert d.choose(instances) is instances[1]

    def test_round_robin_cycles(self):
        d = Dispatcher("round_robin", load_fn=lambda inst: 0)
        items = ["a", "b", "c"]
        assert [d.choose(items) for _ in range(6)] == ["a", "b", "c", "a", "b", "c"]

    def test_random_needs_rng(self):
        with pytest.raises(ValueError):
            Dispatcher("random", load_fn=lambda inst: 0)
        d = Dispatcher("random", load_fn=lambda inst: 0, rng=np.random.default_rng(0))
        assert d.choose(["x", "y"]) in ("x", "y")

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            Dispatcher("sticky", load_fn=lambda inst: 0)

    def test_empty_instances(self):
        d = Dispatcher("least_loaded", load_fn=lambda inst: 0)
        with pytest.raises(ValueError):
            d.choose([])


class TestColocatedSystem:
    def test_completes_all(self, tiny_spec, small_trace):
        sim = Simulation()
        system = ColocatedSystem(sim, tiny_spec)
        res = simulate_trace(system, small_trace)
        assert res.completed == len(small_trace)
        assert res.unfinished == 0
        assert res.num_gpus == 1

    def test_replicas_reduce_latency(self, tiny_spec, rng):
        trace = generate_trace(fixed_length_dataset(512, 16), rate=8.0, num_requests=80, rng=rng)
        p90 = {}
        for n in (1, 4):
            sim = Simulation()
            system = ColocatedSystem(sim, tiny_spec, num_replicas=n)
            res = simulate_trace(system, trace)
            p90[n] = float(np.percentile([r.ttft for r in res.records], 90))
        assert p90[4] < p90[1]

    def test_num_gpus_counts_parallelism(self, tiny_model, small_trace):
        spec = InstanceSpec(model=tiny_model, config=ParallelismConfig(2, 1))
        sim = Simulation()
        system = ColocatedSystem(sim, spec, num_replicas=3)
        assert system.num_gpus() == 6


class TestDisaggregatedSystem:
    def _build(self, spec, sim, **kw):
        return DisaggregatedSystem(
            sim, spec, spec, num_prefill=1, num_decode=1, transfer_link=NVLINK, **kw
        )

    def test_completes_all(self, tiny_spec, small_trace):
        sim = Simulation()
        res = simulate_trace(self._build(tiny_spec, sim), small_trace)
        assert res.completed == len(small_trace)
        assert res.unfinished == 0

    def test_lifecycle_stages_populated(self, tiny_spec, small_trace):
        sim = Simulation()
        res = simulate_trace(self._build(tiny_spec, sim), small_trace)
        rec = res.records[0]
        assert rec.prefill_exec_time > 0
        assert rec.transfer_time > 0
        assert rec.decode_exec_time > 0

    def test_transfer_records_per_request(self, tiny_spec, small_trace):
        sim = Simulation()
        res = simulate_trace(self._build(tiny_spec, sim), small_trace)
        assert len(res.transfer_records) == len(small_trace)

    def test_slow_link_shows_in_transfer_time(self, tiny_spec, small_trace):
        times = {}
        for name, link in (("fast", NVLINK), ("slow", ETHERNET_25G)):
            sim = Simulation()
            system = DisaggregatedSystem(
                sim, tiny_spec, tiny_spec, transfer_link=link
            )
            res = simulate_trace(system, small_trace)
            times[name] = np.mean([r.transfer_time for r in res.records])
        assert times["slow"] > 10 * times["fast"]

    def test_pull_and_push_modes_both_complete(self, tiny_spec, small_trace):
        for mode in ("pull", "push"):
            sim = Simulation()
            system = DisaggregatedSystem(
                sim, tiny_spec, tiny_spec, transfer_mode=mode
            )
            res = simulate_trace(system, small_trace)
            assert res.unfinished == 0, mode

    def test_mismatched_models_rejected(self, tiny_spec, opt13b):
        other = InstanceSpec(model=opt13b)
        with pytest.raises(ValueError):
            DisaggregatedSystem(Simulation(), tiny_spec, other)

    def test_heterogeneous_parallelism(self, tiny_model, small_trace):
        # Appendix B style: prefill tp=2, decode tp=1.
        pre = InstanceSpec(model=tiny_model, config=ParallelismConfig(2, 1))
        dec = InstanceSpec(model=tiny_model, config=ParallelismConfig(1, 1))
        sim = Simulation()
        system = DisaggregatedSystem(sim, pre, dec, num_prefill=1, num_decode=2)
        res = simulate_trace(system, small_trace)
        assert res.unfinished == 0
        assert system.num_gpus() == 2 + 2

    def test_single_token_requests_skip_decode(self, tiny_spec, rng):
        # output_len == 1: prefill produces everything; no migration.
        trace = generate_trace(
            fixed_length_dataset(64, 1), rate=5.0, num_requests=10, rng=rng
        )
        sim = Simulation()
        res = simulate_trace(self._build(tiny_spec, sim), trace)
        assert res.completed == 10
        assert len(res.transfer_records) == 0
        assert all(r.tpot == 0.0 for r in res.records)

    def test_ttft_excludes_transfer_and_decode(self, tiny_spec, small_trace):
        sim = Simulation()
        res = simulate_trace(self._build(tiny_spec, sim), small_trace)
        for rec in res.records:
            assert rec.ttft == pytest.approx(
                rec.prefill_queue_time + rec.prefill_exec_time, abs=1e-9
            )


class TestPhaseOnly:
    def test_prefill_only_tpot_zero(self, tiny_spec, small_trace):
        sim = Simulation()
        res = simulate_trace(PrefillOnlySystem(sim, tiny_spec), small_trace)
        assert res.completed == len(small_trace)
        assert all(r.tpot == 0.0 for r in res.records)
        assert all(r.ttft > 0 for r in res.records)

    def test_decode_only_ttft_zero(self, tiny_spec, small_trace):
        sim = Simulation()
        res = simulate_trace(DecodeOnlySystem(sim, tiny_spec), small_trace)
        assert res.completed == len(small_trace)
        assert all(r.ttft == pytest.approx(0.0, abs=1e-9) for r in res.records)
        assert all(r.tpot > 0 for r in res.records)

    def test_decode_only_single_token_requests(self, tiny_spec, rng):
        trace = generate_trace(fixed_length_dataset(64, 1), rate=5.0, num_requests=5, rng=rng)
        sim = Simulation()
        res = simulate_trace(DecodeOnlySystem(sim, tiny_spec), trace)
        assert res.completed == 5


class TestSimulateTrace:
    def test_arrivals_respect_trace_times(self, tiny_spec):
        trace = Trace(requests=[Request(0, 2.0, 64, 2)])
        sim = Simulation()
        system = ColocatedSystem(sim, tiny_spec)
        res = simulate_trace(system, trace)
        assert res.records[0].arrival_time == 2.0
        # The request cannot start before it arrives.
        assert res.records[0].finish_time > 2.0

    def test_max_time_cutoff(self, tiny_spec, small_trace):
        sim = Simulation()
        system = ColocatedSystem(sim, tiny_spec)
        res = simulate_trace(system, small_trace, max_sim_time=0.3)
        # Only requests that arrived before the cutoff count as submitted;
        # the rest of the trace is simply not seen.
        assert res.sim_time == 0.3
        assert res.completed + res.unfinished == system.submitted
        assert res.completed < len(small_trace)
