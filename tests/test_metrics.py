"""Tests for the metrics registry, SLO monitor, and exporters."""

import math

import numpy as np
import pytest

from repro.analysis import (
    phase_utilization,
    registry_snapshot,
    slo_attainment,
    to_prometheus_text,
    write_metrics_json,
    write_prometheus_text,
)
from repro.core import WorkloadProfiler
from repro.serving import (
    ColocatedSystem,
    DecodeOnlySystem,
    DisaggregatedSystem,
    PrefillOnlySystem,
    simulate_trace,
)
from repro.simulator import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    RequestRecord,
    Simulation,
    SloMonitor,
    exponential_buckets,
)
from repro.workload import SHAREGPT, SLO, Request, generate_trace


def _record(request_id=0, ttft=0.1, tpot=0.01, arrival=0.0):
    return RequestRecord(
        request_id=request_id,
        arrival_time=arrival,
        input_len=16,
        output_len=4,
        ttft=ttft,
        tpot=tpot,
        finish_time=arrival + ttft + 3 * tpot,
        prefill_queue_time=0.0,
        prefill_exec_time=ttft,
        transfer_time=0.0,
        decode_queue_time=0.0,
        decode_exec_time=3 * tpot,
    )


class TestInstruments:
    def test_counter_inc_and_guards(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_callback_backed_counter(self):
        box = {"v": 7}
        c = Counter(fn=lambda: box["v"])
        assert c.value == 7.0
        box["v"] = 9
        assert c.value == 9.0
        with pytest.raises(RuntimeError):
            c.inc()

    def test_gauge_set_inc_dec(self):
        g = Gauge()
        g.set(4.0)
        g.inc()
        g.dec(2.0)
        assert g.value == 3.0

    def test_callback_backed_gauge_guards(self):
        g = Gauge(fn=lambda: 1.0)
        with pytest.raises(RuntimeError):
            g.set(2.0)
        with pytest.raises(RuntimeError):
            g.inc()

    def test_histogram_buckets(self):
        h = Histogram(buckets=[1.0, 2.0, 4.0])
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(105.0)
        assert h.bucket_counts == [1, 1, 1]  # 100 overflows every bound
        assert h.cumulative_counts() == [1, 2, 3]

    def test_histogram_bounds_validation(self):
        with pytest.raises(ValueError):
            Histogram(buckets=[])
        with pytest.raises(ValueError):
            Histogram(buckets=[1.0, 1.0])
        with pytest.raises(ValueError):
            Histogram(buckets=[2.0, 1.0])

    def test_exponential_buckets(self):
        b = exponential_buckets(0.5, 2.0, 4)
        assert b == (0.5, 1.0, 2.0, 4.0)
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 2.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(0.5, 1.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(0.5, 2.0, 0)

    def test_default_latency_buckets_span(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == 0.001
        assert DEFAULT_LATENCY_BUCKETS[-1] > 100.0


class TestHistogramBucketBoundaries:
    """Satellite audit: exact `le`-edge placement (Prometheus semantics)."""

    def test_value_on_exact_bound_lands_in_that_bucket(self):
        h = Histogram(buckets=[1.0, 2.0, 4.0])
        for bound in (1.0, 2.0, 4.0):
            h.observe(bound)
        assert h.bucket_counts == [1, 1, 1]

    def test_exponential_bucket_edges(self):
        bounds = exponential_buckets(0.001, 2.0, 18)
        h = Histogram(buckets=bounds)
        # Every computed upper bound must fall in its own bucket, never
        # spill into the next one — the float products from
        # start*factor**i are exactly the stored bounds.
        for bound in bounds:
            h.observe(bound)
        assert h.bucket_counts == [1] * len(bounds)

    def test_below_first_and_above_last(self):
        h = Histogram(buckets=[1.0, 2.0])
        h.observe(-5.0)     # below every bound: first bucket
        h.observe(0.0)
        h.observe(2.0000001)  # above the last bound: +Inf only
        assert h.bucket_counts == [2, 0]
        assert h.count == 3

    def test_just_inside_and_just_outside_an_edge(self):
        h = Histogram(buckets=[1.0, 2.0, 4.0])
        h.observe(math.nextafter(2.0, -math.inf))  # largest float < 2.0
        h.observe(2.0)
        h.observe(math.nextafter(2.0, math.inf))   # smallest float > 2.0
        assert h.bucket_counts == [0, 2, 1]

    def test_nan_counts_only_toward_inf(self):
        h = Histogram(buckets=[1.0, 2.0])
        h.observe(float("nan"))
        assert h.count == 1
        assert h.bucket_counts == [0, 0]
        assert h.cumulative_counts() == [0, 0]  # +Inf (== count) still sees it

    def test_cumulative_counts_monotone_under_random_observations(self):
        rng = np.random.default_rng(11)
        h = Histogram(buckets=list(exponential_buckets(0.001, 2.0, 18)))
        for value in rng.exponential(scale=0.5, size=500):
            h.observe(float(value))
        cumulative = h.cumulative_counts()
        assert all(b >= a for a, b in zip(cumulative, cumulative[1:]))
        assert cumulative[-1] <= h.count  # +Inf bucket is count itself

    def test_export_bucket_lines_monotone_with_edge_values(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_edge", buckets=[1.0, 2.0, 4.0])
        for value in (1.0, 2.0, 4.0, 0.5, 9.0, float("nan")):
            h.observe(value)
        text = to_prometheus_text(reg)
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_edge_bucket")
        ]
        assert counts == sorted(counts), f"non-monotone buckets: {counts}"
        assert counts[-1] == 6  # +Inf == observation count, NaN included


class TestRegistry:
    def test_registration_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_x_total", "help", labels={"phase": "prefill"})
        b = reg.counter("repro_x_total", "ignored", labels={"phase": "prefill"})
        assert a is b
        assert len(reg) == 1

    def test_label_children_are_distinct(self):
        reg = MetricsRegistry()
        a = reg.gauge("repro_g", labels={"phase": "prefill"})
        b = reg.gauge("repro_g", labels={"phase": "decode"})
        assert a is not b
        a.set(1.0)
        assert reg.get("repro_g", {"phase": "prefill"}).value == 1.0
        assert reg.get("repro_g", {"phase": "decode"}).value == 0.0

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_x")
        with pytest.raises(ValueError):
            reg.gauge("repro_x")

    def test_labelname_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_x", labels={"phase": "p"})
        with pytest.raises(ValueError):
            reg.counter("repro_x", labels={"instance": "i"})

    def test_invalid_names(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("0bad")
        with pytest.raises(ValueError):
            reg.counter("repro_ok", labels={"0bad": "v"})

    def test_contains_and_get(self):
        reg = MetricsRegistry()
        reg.gauge("repro_g")
        assert "repro_g" in reg
        assert "repro_missing" not in reg
        with pytest.raises(KeyError):
            reg.get("repro_missing")

    def test_families_sorted(self):
        reg = MetricsRegistry()
        reg.counter("repro_z")
        reg.counter("repro_a")
        assert [f.name for f in reg.families()] == ["repro_a", "repro_z"]


class TestSloMonitor:
    def _monitor(self, window=10.0, registry=None):
        sim = Simulation()
        mon = SloMonitor(
            sim, SLO(ttft=1.0, tpot=0.1), window=window, registry=registry
        )
        return sim, mon

    def test_cumulative_matches_offline(self):
        sim, mon = self._monitor()
        records = [
            _record(0, ttft=0.5, tpot=0.05),   # both ok
            _record(1, ttft=2.0, tpot=0.05),   # ttft miss
            _record(2, ttft=0.5, tpot=0.5),    # tpot miss
            _record(3, ttft=1.0, tpot=0.1),    # boundary: <= attains
        ]
        for r in records:
            mon.observe_completion(r)
        offline = slo_attainment(records, mon.slo)
        cum = mon.cumulative_attainment()
        assert cum.total == offline.total
        assert cum.ttft_only == offline.ttft_only
        assert cum.tpot_only == offline.tpot_only
        assert cum.num_requests == offline.num_requests

    def test_window_evicts_old_completions(self):
        sim, mon = self._monitor(window=10.0)
        mon.observe_completion(_record(0, ttft=5.0))  # violation at t=0
        sim._now = 20.0  # jump past the window
        mon.observe_completion(_record(1, ttft=0.5))
        win = mon.windowed_attainment()
        assert win.num_requests == 1
        assert win.total == 1.0
        cum = mon.cumulative_attainment()
        assert cum.num_requests == 2
        assert cum.total == 0.5

    def test_empty_window_is_perfect(self):
        _sim, mon = self._monitor()
        assert mon.windowed_attainment().total == 1.0
        assert mon.cumulative_attainment().num_requests == 0

    def test_violation_streaks(self):
        _sim, mon = self._monitor()
        for ttft in (5.0, 5.0, 0.5, 5.0, 5.0, 5.0):
            mon.observe_completion(_record(ttft=ttft))
        assert mon.violation_streak == 3
        assert mon.longest_violation_streak == 3

    def test_windowed_goodput_keys_and_span(self):
        sim, mon = self._monitor(window=10.0)
        sim._now = 5.0
        mon.observe_completion(_record(ttft=0.5))
        mon.observe_completion(_record(ttft=5.0))  # ttft miss, tpot ok
        gp = mon.windowed_goodput()
        assert gp["total"] == pytest.approx(1 / 5.0)
        assert gp["ttft"] == pytest.approx(1 / 5.0)
        assert gp["tpot"] == pytest.approx(2 / 5.0)

    def test_arrival_window_and_rate(self):
        sim, mon = self._monitor(window=10.0)
        for i in range(3):
            sim._now = float(i)
            mon.observe_arrival(
                Request(request_id=i, arrival_time=sim.now, input_len=8, output_len=2)
            )
        assert [r.request_id for r in mon.arrival_window()] == [0, 1, 2]
        sim._now = 11.5  # arrivals at t=0,1 age out
        assert [r.request_id for r in mon.arrival_window()] == [2]
        assert mon.windowed_arrival_rate() == pytest.approx(1 / 10.0)

    def test_registry_self_registration(self):
        reg = MetricsRegistry()
        _sim, mon = self._monitor(registry=reg)
        for name in (
            "repro_slo_arrivals_total",
            "repro_slo_completions_total",
            "repro_slo_violations_total",
            "repro_slo_attainment_window",
            "repro_slo_attainment_cumulative",
            "repro_goodput_window_rps",
            "repro_slo_violation_streak",
            "repro_ttft_seconds",
            "repro_tpot_seconds",
        ):
            assert name in reg
        mon.observe_completion(_record(ttft=5.0))
        violations = reg.get("repro_slo_violations_total", {"objective": "total"})
        assert violations.value == 1
        assert reg.get("repro_ttft_seconds").count == 1

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SloMonitor(Simulation(), SLO(ttft=1.0, tpot=0.1), window=0.0)

    def test_describe_mentions_key_quantities(self):
        _sim, mon = self._monitor()
        text = mon.describe()
        assert "attainment" in text and "goodput" in text and "streak" in text


class TestPrometheusExport:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("repro_c_total", "a counter", labels={"phase": "p"}).inc(3)
        reg.gauge("repro_g", "a gauge").set(1.5)
        text = to_prometheus_text(reg)
        assert "# HELP repro_c_total a counter\n" in text
        assert "# TYPE repro_c_total counter\n" in text
        assert 'repro_c_total{phase="p"} 3\n' in text
        assert "repro_g 1.5\n" in text

    def test_histogram_lines_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_h", buckets=[1.0, 2.0])
        h.observe(0.5)
        h.observe(1.5)
        h.observe(9.0)
        text = to_prometheus_text(reg)
        assert 'repro_h_bucket{le="1"} 1\n' in text
        assert 'repro_h_bucket{le="2"} 2\n' in text
        assert 'repro_h_bucket{le="+Inf"} 3\n' in text
        assert "repro_h_sum 11\n" in text
        assert "repro_h_count 3\n" in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.gauge("repro_g", labels={"name": 'a"b\\c\nd'}).set(1.0)
        text = to_prometheus_text(reg)
        assert 'name="a\\"b\\\\c\\nd"' in text

    def test_special_float_rendering(self):
        reg = MetricsRegistry()
        reg.gauge("repro_nan", fn=lambda: float("nan"))
        reg.gauge("repro_inf", fn=lambda: float("inf"))
        text = to_prometheus_text(reg)
        assert "repro_nan NaN" in text
        assert "repro_inf +Inf" in text

    def test_empty_registry_exports_empty(self):
        assert to_prometheus_text(MetricsRegistry()) == ""

    def test_json_snapshot_roundtrip(self, tmp_path):
        import json

        reg = MetricsRegistry()
        reg.counter("repro_c_total", labels={"phase": "p"}).inc(2)
        reg.histogram("repro_h", buckets=[1.0]).observe(0.5)
        snap = registry_snapshot(reg)
        assert snap["repro_c_total"]["samples"][0]["value"] == 2
        assert snap["repro_h"]["samples"][0]["buckets"] == {"1": 1}
        path = tmp_path / "m.json"
        write_metrics_json(str(path), reg)
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(snap, sort_keys=True)
        )

    def test_write_prometheus_text(self, tmp_path):
        reg = MetricsRegistry()
        reg.gauge("repro_g").set(2.0)
        path = tmp_path / "m.prom"
        write_prometheus_text(str(path), reg)
        assert path.read_text() == to_prometheus_text(reg)


def _instrumented_disagg_run(tiny_spec, seed=0, num_requests=40):
    sim = Simulation()
    system = DisaggregatedSystem(
        sim, tiny_spec, tiny_spec, num_prefill=2, num_decode=2
    )
    slo = SLO(ttft=1.0, tpot=0.1)
    registry = MetricsRegistry()
    monitor = SloMonitor(sim, slo, window=20.0, registry=registry)
    system.attach_monitor(monitor)
    system.instrument(registry)
    trace = generate_trace(
        SHAREGPT, rate=4.0, num_requests=num_requests,
        rng=np.random.default_rng(seed),
    )
    result = simulate_trace(system, trace)
    return system, registry, monitor, result, slo, trace


class TestSystemInstrumentation:
    def test_disaggregated_wiring(self, tiny_spec):
        system, reg, mon, result, slo, trace = _instrumented_disagg_run(tiny_spec)
        assert result.completed == len(trace)
        assert reg.get("repro_requests_submitted_total").value == len(trace)
        assert reg.get("repro_requests_completed_total").value == len(trace)
        assert reg.get("repro_requests_in_flight").value == 0
        # Every instance reported, under its own labels.
        for name in ("prefill-0", "prefill-1"):
            labels = {"phase": "prefill", "instance": name}
            assert reg.get("repro_batches_total", labels).value > 0
            assert reg.get("repro_busy_seconds_total", labels).value > 0
        assert reg.get("repro_kv_transfer_bytes_total").value > 0
        assert reg.get("repro_kv_transfers_total").value > 0
        dispatches = reg.get(
            "repro_dispatch_total", {"pool": "prefill", "policy": "least_loaded"}
        )
        assert dispatches.value == len(trace)
        # Monitor saw everything the system served.
        assert mon.arrived == len(trace)
        assert mon.completed == len(trace)

    def test_cumulative_attainment_matches_offline_exactly(self, tiny_spec):
        _sys, _reg, mon, result, slo, _trace = _instrumented_disagg_run(tiny_spec)
        offline = slo_attainment(result.records, slo)
        cum = mon.cumulative_attainment()
        assert cum.total == offline.total
        assert cum.ttft_only == offline.ttft_only
        assert cum.tpot_only == offline.tpot_only
        assert cum.num_requests == offline.num_requests

    def test_export_byte_deterministic_across_runs(self, tiny_spec):
        texts = [
            to_prometheus_text(_instrumented_disagg_run(tiny_spec, seed=7)[1])
            for _ in range(2)
        ]
        assert texts[0] == texts[1]
        assert texts[0]  # non-trivial export

    def test_phase_utilization(self, tiny_spec):
        _sys, reg, _mon, _res, _slo, _trace = _instrumented_disagg_run(tiny_spec)
        util = phase_utilization(reg)
        assert set(util) == {"prefill", "decode"}
        assert 0.0 < util["prefill"] <= 1.0
        assert 0.0 < util["decode"] <= 1.0
        assert phase_utilization(MetricsRegistry()) == {}

    def test_instrument_is_idempotent(self, tiny_spec):
        system, reg, _mon, _res, _slo, _trace = _instrumented_disagg_run(tiny_spec)
        before = to_prometheus_text(reg)
        system.instrument(reg)  # second call must not duplicate or reset
        assert to_prometheus_text(reg) == before

    def test_colocated_wiring(self, tiny_spec):
        sim = Simulation()
        system = ColocatedSystem(sim, tiny_spec, num_replicas=2)
        reg = MetricsRegistry()
        system.instrument(reg)
        trace = generate_trace(
            SHAREGPT, rate=3.0, num_requests=20, rng=np.random.default_rng(0)
        )
        result = simulate_trace(system, trace)
        assert result.completed == len(trace)
        labels = {"phase": "colocated", "instance": "colocated-0"}
        assert reg.get("repro_tokens_total", labels).value > 0
        kinds = {"prefill", "decode", "mixed"}
        total_iters = sum(
            reg.get(
                "repro_iterations_total",
                {"phase": "colocated", "instance": "colocated-0", "kind": kind},
            ).value
            for kind in kinds
        )
        assert total_iters > 0
        assert phase_utilization(reg) and "colocated" in phase_utilization(reg)

    def test_phase_only_wiring(self, tiny_spec):
        for cls, phase in ((PrefillOnlySystem, "prefill"),
                           (DecodeOnlySystem, "decode")):
            sim = Simulation()
            system = cls(sim, tiny_spec)
            reg = MetricsRegistry()
            system.instrument(reg)
            trace = generate_trace(
                SHAREGPT, rate=3.0, num_requests=10, rng=np.random.default_rng(1)
            )
            result = simulate_trace(system, trace)
            assert result.completed == len(trace)
            assert any(
                f.name == "repro_utilization" for f in reg.families()
            ), phase
            assert phase in phase_utilization(reg)

    def test_transfer_metrics(self, tiny_spec):
        _sys, reg, _mon, result, _slo, _trace = _instrumented_disagg_run(tiny_spec)
        hist = reg.get("repro_kv_transfer_seconds")
        assert hist.count == reg.get("repro_kv_transfers_completed_total").value
        assert reg.get("repro_kv_transfer_stall_seconds_total").value >= 0.0
        assert reg.get("repro_kv_transfer_bytes_total").value == sum(
            r.num_bytes for r in result.transfer_records
        )


class TestProfilerFromMonitor:
    def test_monitor_backed_profiler_shares_window(self, tiny_spec):
        _sys, _reg, mon, _res, _slo, trace = _instrumented_disagg_run(tiny_spec)
        prof = WorkloadProfiler.from_monitor(mon, window_size=100)
        assert len(prof) == len(mon.arrival_window())
        stats = prof.stats()
        assert stats.mean_input_len > 0
        with pytest.raises(RuntimeError):
            prof.observe(trace.requests[0])

    def test_standalone_mode_unchanged(self):
        prof = WorkloadProfiler(window_size=10)
        for i in range(3):
            prof.observe(
                Request(request_id=i, arrival_time=float(i), input_len=8,
                        output_len=2)
            )
        assert len(prof) == 3

    def test_window_size_caps_monitor_reads(self):
        sim = Simulation()
        mon = SloMonitor(sim, SLO(ttft=1.0, tpot=0.1), window=1000.0)
        for i in range(10):
            mon.observe_arrival(
                Request(request_id=i, arrival_time=0.0, input_len=8, output_len=2)
            )
        prof = WorkloadProfiler.from_monitor(mon, window_size=4)
        assert len(prof) == 4
        assert [r.request_id for r in prof.snapshot().requests] == [6, 7, 8, 9]
