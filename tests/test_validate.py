"""Tests for placement validation against cluster constraints."""

import pytest

from repro.core import PhasePlan, Placement, validate_placement
from repro.hardware import Cluster, Node, high_affinity_cluster, paper_testbed
from repro.latency import ParallelismConfig
from repro.models import get_model


def make_placement(p_tp=2, p_pp=1, d_tp=1, d_pp=1, n_p=1, n_d=1,
                   gp_p=4.0, gp_d=4.0, intra=True):
    return Placement(
        prefill=PhasePlan(ParallelismConfig(p_tp, p_pp), n_p, gp_p),
        decode=PhasePlan(ParallelismConfig(d_tp, d_pp), n_d, gp_d),
        kv_transfer_intra_node=intra,
    )


class TestValidatePlacement:
    def test_valid_13b_placement(self):
        report = validate_placement(
            make_placement(), get_model("opt-13b"), paper_testbed()
        )
        assert report.ok, report.summary()

    def test_gpu_budget_exceeded(self):
        report = validate_placement(
            make_placement(n_p=20, n_d=20),
            get_model("opt-13b"),
            paper_testbed(),
        )
        assert not report.ok
        assert any("GPUs" in e for e in report.errors)

    def test_memory_infeasible(self):
        # 66B at tp=1 pp=1 does not fit one 80 GB GPU.
        report = validate_placement(
            make_placement(p_tp=1, d_tp=1), get_model("opt-66b"), paper_testbed()
        )
        assert not report.ok
        assert any("weights do not fit" in e for e in report.errors)

    def test_tp_cannot_straddle_nodes(self):
        small = Cluster(nodes=[Node(index=i, num_gpus=2) for i in range(4)])
        report = validate_placement(
            make_placement(p_tp=4), get_model("opt-13b"), small
        )
        assert not report.ok
        assert any("straddle" in e for e in report.errors)

    def test_stage_colocation_packing(self):
        small = Cluster(nodes=[Node(index=i, num_gpus=4) for i in range(4)])
        report = validate_placement(
            make_placement(p_tp=4, d_tp=4, intra=True),
            get_model("opt-13b"),
            small,
        )
        assert not report.ok
        assert any("colocation" in e for e in report.errors)

    def test_mismatched_pp_warns(self):
        report = validate_placement(
            make_placement(p_pp=2, d_pp=1, intra=True),
            get_model("opt-13b"),
            paper_testbed(),
        )
        assert report.ok  # warning, not error
        assert report.warnings

    def test_cross_node_transfer_on_slow_fabric_warns(self):
        report = validate_placement(
            make_placement(intra=False), get_model("opt-13b"), paper_testbed()
        )
        assert any("fabric" in w for w in report.warnings)
        ok_report = validate_placement(
            make_placement(intra=False), get_model("opt-13b"), high_affinity_cluster()
        )
        assert not any("fabric" in w for w in ok_report.warnings)

    def test_imbalance_warns(self):
        report = validate_placement(
            make_placement(gp_p=10.0, gp_d=1.0),
            get_model("opt-13b"),
            paper_testbed(),
        )
        assert any("differ" in w for w in report.warnings)

    def test_invalid_partition(self):
        # opt-13b has 40 heads; tp=16 cannot partition it. The config is
        # constructible but must be flagged by validation.
        report = validate_placement(
            make_placement(p_tp=16), get_model("opt-13b"), paper_testbed()
        )
        assert not report.ok

    def test_summary_format(self):
        report = validate_placement(
            make_placement(), get_model("opt-13b"), paper_testbed()
        )
        assert report.summary().startswith("OK")
