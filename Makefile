.PHONY: install test lint lint-full lint-baseline sanitize-demo trace-demo metrics-demo profile-demo golden-regen bench bench-search bench-profile bench-kernel examples clean

install:
	pip install -e . --no-build-isolation

# Matches the tier-1 verify command: works on a fresh checkout without
# an editable install.
test:
	PYTHONPATH=src python -m pytest -x -q

# Determinism & simulation-invariant static analysis; exits non-zero on
# any finding. The tree is self-hosting: `src` and `tests` lint clean.
lint:
	PYTHONPATH=src python -m repro.cli lint src tests examples benchmarks

# Everything `lint` does plus the baseline ratchet check and the SARIF
# artifact CI uploads, with the call-graph disk cache warmed. This is
# exactly what the CI lint job runs.
lint-full:
	PYTHONPATH=src python -m repro.cli lint --cache-dir .lint-cache \
		--baseline check src tests examples benchmarks
	PYTHONPATH=src python -m repro.cli lint --cache-dir .lint-cache \
		--format sarif src tests examples benchmarks > reprolint.sarif

# Re-snapshot known findings (the ratchet: only ever shrink it).
lint-baseline:
	PYTHONPATH=src python -m repro.cli lint --cache-dir .lint-cache \
		--baseline write src tests examples benchmarks

# Golden scenario under full runtime invariant checking: virtual-time
# monotonicity, request conservation, KV-leak and transfer double-free
# detection. Must report "SimSanitizer: 0 violations".
sanitize-demo:
	PYTHONPATH=src python -m repro.cli trace --model opt-13b --rate 2.0 \
		--requests 100 --sanitize --out /tmp/trace_sanitized.json

trace-demo:
	PYTHONPATH=src python -m repro.cli trace --model opt-13b --rate 2.0 \
		--requests 100 --out /tmp/trace.json --jsonl-out /tmp/trace.jsonl

metrics-demo:
	PYTHONPATH=src python -m repro.cli metrics --model opt-13b --rate 3.0 \
		--requests 300 --prom-out /tmp/metrics.prom --json-out /tmp/metrics.json

# Critical-path profile with goodput attribution (DESIGN §4g); writes
# the canonical JSON and a self-contained HTML report to /tmp.
profile-demo:
	PYTHONPATH=src python -m repro.cli profile --model opt-13b --rate 4.0 \
		--requests 100 --ttft 4.0 --tpot 0.2 \
		--json-out /tmp/profile.json --html-out /tmp/profile.html

golden-regen:
	PYTHONPATH=src python -m tests.test_golden_trace --regen
	PYTHONPATH=src python -m tests.test_critpath --regen

bench:
	pytest benchmarks/ --benchmark-only

# Search-acceleration benchmark: naive vs cached/pruned/parallel
# placement search; writes BENCH_search.json at the repo root.
bench-search:
	PYTHONPATH=src python benchmarks/bench_fig12_algorithm_time.py

# Profiler hook-overhead benchmark: bare vs traced vs traced+profiled;
# enforces the <5% per-event budget and writes BENCH_profile.json.
bench-profile:
	PYTHONPATH=src python benchmarks/bench_profile_overhead.py

# Fast-forward kernel benchmark (DESIGN.md §4h): macro-stepped decode +
# memoized batch latency vs the per-step reference; writes
# BENCH_kernel.json at the repo root with bitwise-parity witnesses.
bench-kernel:
	PYTHONPATH=src python benchmarks/bench_kernel.py

examples:
	python examples/quickstart.py
	python examples/api_frontend.py
	python examples/cost_analysis.py
	python examples/fault_injection.py
	python examples/burstiness_pull_vs_push.py
	python examples/queueing_analysis.py

clean:
	rm -rf build dist *.egg-info .pytest_cache .hypothesis .lint-cache reprolint.sarif
	find . -name __pycache__ -type d -exec rm -rf {} +
