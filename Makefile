.PHONY: install test bench examples clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/api_frontend.py
	python examples/cost_analysis.py
	python examples/fault_injection.py
	python examples/burstiness_pull_vs_push.py
	python examples/queueing_analysis.py

clean:
	rm -rf build dist *.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
