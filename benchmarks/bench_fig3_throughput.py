"""Figure 3: phase throughput vs batch size and input length.

*(a)* Prefill throughput (tokens/s) grows with input length until the
GPU saturates near ``L_m``, after which batching no longer helps.
*(b)* Decoding throughput keeps growing with batch size — batching is
the key to decode efficiency.
"""

from __future__ import annotations

from repro.analysis import format_series
from repro.hardware import A100_80GB
from repro.latency import (
    coefficients_from_roofline,
    decode_throughput,
    prefill_throughput,
    saturation_length,
)
from repro.models import get_model

MODEL = get_model("opt-13b")
COEFFS = coefficients_from_roofline(A100_80GB)
INPUT_LENS = [32, 64, 128, 256, 512, 1024, 2048]
BATCH_SIZES = [1, 2, 4, 8, 16, 32, 64, 128, 256]
PREFILL_BATCHES = [1, 2, 4, 8]


def run_figure3():
    prefill = {
        f"batch={b}": [
            prefill_throughput(MODEL, COEFFS, [length] * b) for length in INPUT_LENS
        ]
        for b in PREFILL_BATCHES
    }
    decode = {
        "tokens/s": [
            decode_throughput(MODEL, COEFFS, [256] * b) for b in BATCH_SIZES
        ]
    }
    return prefill, decode


def test_fig3_throughput(benchmark):
    prefill, decode = benchmark.pedantic(run_figure3, rounds=3, iterations=1)
    print()
    print(
        format_series(
            "input_len",
            INPUT_LENS,
            prefill,
            title="Figure 3(a): prefill throughput (tokens/s), OPT-13B",
            float_fmt="{:.0f}",
        )
    )
    print()
    print(
        format_series(
            "batch",
            BATCH_SIZES,
            decode,
            title="Figure 3(b): decoding throughput (tokens/s), OPT-13B",
            float_fmt="{:.0f}",
        )
    )
    lm = saturation_length(MODEL, COEFFS)
    print(f"\nprofiled saturation length L_m = {lm} tokens (paper: ~512 for 13B)")

    single = prefill["batch=1"]
    # (a) throughput rises steeply below saturation...
    assert single[INPUT_LENS.index(512)] > 2 * single[0]
    # ...and flattens past it: 2048 within 35% of 512.
    i512, i2048 = INPUT_LENS.index(512), INPUT_LENS.index(2048)
    assert abs(single[i2048] - single[i512]) / single[i512] < 0.35
    # Past saturation, batching does not raise throughput materially.
    assert prefill["batch=8"][i2048] < 1.2 * single[i2048]
    # (b) decode throughput keeps scaling with batch.
    tput = decode["tokens/s"]
    assert tput[-1] > 20 * tput[0]
    assert 256 <= lm <= 1024
