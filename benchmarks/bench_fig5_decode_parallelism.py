"""Figure 5: decoding latency/throughput under different parallelism.

13B model, batch size 128, input length 256. Intra-op parallelism
reduces per-step latency with diminishing returns; inter-op parallelism
scales throughput almost linearly (each stage carries its own
micro-batch, and KV capacity grows with the GPUs).
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.hardware import A100_80GB
from repro.latency import ParallelismConfig, coefficients_from_roofline, decode_times
from repro.models import get_model
from repro.simulator import InstanceSpec

MODEL = get_model("opt-13b")
COEFFS = coefficients_from_roofline(A100_80GB)
BATCH = 128
CONTEXT = 256
DEGREES = [1, 2, 4, 8]


def run_figure5():
    rows = []
    for degree in DEGREES:
        # Intra-op: whole batch, tp-way split.
        intra = decode_times(
            MODEL, ParallelismConfig(degree, 1), COEFFS, [CONTEXT] * BATCH
        )
        intra_tput = BATCH / intra.request_latency
        # Inter-op: each stage runs its own 128-request micro-batch, so
        # the instance sustains degree x BATCH active requests with a
        # token interval of one pipeline traversal.
        inter = decode_times(
            MODEL, ParallelismConfig(1, degree), COEFFS, [CONTEXT] * BATCH
        )
        inter_tput = degree * BATCH / inter.request_latency
        kv_capacity = InstanceSpec(
            model=MODEL, config=ParallelismConfig(1, degree)
        ).kv_token_capacity()
        rows.append(
            [
                degree,
                intra.request_latency * 1e3,
                intra_tput,
                inter.request_latency * 1e3,
                inter_tput,
                kv_capacity,
            ]
        )
    return rows


def test_fig5_decode_parallelism(benchmark):
    rows = benchmark.pedantic(run_figure5, rounds=3, iterations=1)
    print()
    print(
        format_table(
            [
                "degree",
                "intra latency(ms)",
                "intra tput(tok/s)",
                "inter latency(ms)",
                "inter tput(tok/s)",
                "inter KV cap(tok)",
            ],
            rows,
            title="Figure 5: decoding under parallelism, OPT-13B, B=128, in=256",
            float_fmt="{:.0f}",
        )
    )
    lat_intra = [r[1] for r in rows]
    tput_inter = [r[4] for r in rows]
    # Intra-op reduces latency but with diminishing returns.
    assert lat_intra[1] < lat_intra[0]
    gain_12 = lat_intra[0] / lat_intra[1]
    gain_48 = lat_intra[2] / lat_intra[3]
    assert gain_48 < gain_12
    # Inter-op scales throughput almost linearly (>= 70% efficiency at 8).
    assert tput_inter[3] > 0.7 * 8 * tput_inter[0]
    # KV capacity grows with inter-op degree.
    caps = [r[5] for r in rows]
    assert caps == sorted(caps) and caps[-1] > 3 * caps[0]
