"""Figure 1: the motivation experiment.

A 13B model, synthetic workload (input 512 / output 64), one A100.
*Upper*: P90 TTFT vs rate for an existing colocated system and for a
prefill-only system. *Lower*: P90 TPOT vs rate for colocated and
decode-only. The paper's headline: colocated goodput ~1.6 req/s/GPU,
while 2 prefill GPUs + 1 decode GPU yield ~10 req/s (3.3 per GPU) —
a ~2.1x per-GPU improvement.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_series, slo_attainment, tpot_percentile, ttft_percentile
from repro.hardware import NVLINK
from repro.models import get_model
from repro.serving import (
    ColocatedSystem,
    DecodeOnlySystem,
    DisaggregatedSystem,
    PrefillOnlySystem,
    simulate_trace,
)
from repro.simulator import InstanceSpec, Simulation
from repro.workload import SLO, fixed_length_dataset, generate_trace

MODEL = get_model("opt-13b")
DATASET = fixed_length_dataset(512, 64)
SLO_FIG1 = SLO(ttft=0.2, tpot=0.1)
RATES = [0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0, 12.0]
N = 300


def _percentiles(factory, rates):
    ttfts, tpots, attains = [], [], []
    for rate in rates:
        trace = generate_trace(DATASET, rate, N, np.random.default_rng(1))
        sim = Simulation()
        res = simulate_trace(factory(sim), trace, max_events=4_000_000)
        ttfts.append(ttft_percentile(res.records))
        tpots.append(tpot_percentile(res.records))
        attains.append(slo_attainment(res.records, SLO_FIG1, num_expected=N).total)
    return ttfts, tpots, attains


def run_figure1():
    spec = InstanceSpec(model=MODEL)
    colo = lambda sim: ColocatedSystem(sim, spec)
    pre = lambda sim: PrefillOnlySystem(sim, spec)
    dec = lambda sim: DecodeOnlySystem(sim, spec)
    disagg = lambda sim: DisaggregatedSystem(
        sim, spec, spec, num_prefill=2, num_decode=1, transfer_link=NVLINK
    )

    colo_ttft, colo_tpot, colo_att = _percentiles(colo, RATES)
    pre_ttft, _, _ = _percentiles(pre, RATES)
    _, dec_tpot, _ = _percentiles(dec, RATES)
    # Disaggregated 2P+1D serves 3x the per-GPU rate on 3 GPUs.
    dis_rates = [r * 3 for r in RATES]
    _, _, dis_att = _percentiles(disagg, dis_rates)

    def goodput(rates, atts):
        return max([0.0] + [r for r, a in zip(rates, atts) if a >= 0.9])

    colo_goodput = goodput(RATES, colo_att)
    dis_goodput_per_gpu = goodput(RATES, dis_att)  # dis swept at 3x
    return {
        "ttft": (colo_ttft, pre_ttft),
        "tpot": (colo_tpot, dec_tpot),
        "colo_goodput": colo_goodput,
        "disagg_goodput_per_gpu": dis_goodput_per_gpu,
    }


def test_fig1_motivation(benchmark):
    out = benchmark.pedantic(run_figure1, rounds=1, iterations=1)
    print()
    print(
        format_series(
            "rate(req/s)",
            RATES,
            {"colocated P90 TTFT": out["ttft"][0], "prefill-only P90 TTFT": out["ttft"][1]},
            title="Figure 1 (upper): P90 TTFT vs rate, OPT-13B, 1xA100",
        )
    )
    print()
    print(
        format_series(
            "rate(req/s)",
            RATES,
            {"colocated P90 TPOT": out["tpot"][0], "decode-only P90 TPOT": out["tpot"][1]},
            title="Figure 1 (lower): P90 TPOT vs rate",
        )
    )
    factor = (
        out["disagg_goodput_per_gpu"] / out["colo_goodput"]
        if out["colo_goodput"]
        else float("inf")
    )
    print(
        f"\ncolocated goodput: {out['colo_goodput']:.2f} req/s/GPU | "
        f"disaggregated (2P+1D): {out['disagg_goodput_per_gpu']:.2f} req/s/GPU | "
        f"improvement {factor:.2f}x (paper: ~2.1x)"
    )
    # Shape assertions: prefill-only beats colocated on TTFT, decode-only
    # beats colocated on TPOT, disaggregation wins on per-GPU goodput.
    assert out["ttft"][1][-1] < out["ttft"][0][-1]
    assert out["tpot"][1][-1] < out["tpot"][0][-1]
    assert out["disagg_goodput_per_gpu"] > 1.4 * out["colo_goodput"]
