"""Figure 9: code completion (HumanEval) and summarization (LongBench).

Both on OPT-66B. Code completion has a very tight TTFT (0.125 s) — both
systems end up TTFT-bound, but DistServe's intra-op prefill instances
cut prefill latency. Summarization has long inputs and a loose TTFT
(15 s) but tight TPOT (0.15 s) — colocation's long prefills crush the
decoding phase, which is where the paper's largest win (4.48x) lives.
"""

from __future__ import annotations

from benchmarks.common import (
    TRIAL_REQUESTS,
    attainment_sweep,
    distserve_system_factory,
    vllm_system_factory,
)
from repro.core import max_goodput
from repro.analysis import format_series
from repro.workload import get_dataset, get_workload

APPLICATIONS = {
    "code-completion": [0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 1.0],
    "summarization": [0.02, 0.05, 0.08, 0.12, 0.18, 0.25, 0.35, 0.5],
}
MODEL = "opt-66b"


def run_application(application):
    workload = get_workload(application, MODEL)
    dataset = get_dataset(workload.dataset_name)
    rates = APPLICATIONS[application]
    vllm_factory, vllm_gpus = vllm_system_factory(MODEL)
    dist_factory, dist_gpus, placement = distserve_system_factory(application, MODEL)
    vllm_rep = attainment_sweep(
        vllm_factory, dataset, workload.slo, [r * vllm_gpus for r in rates]
    )
    dist_rep = attainment_sweep(
        dist_factory, dataset, workload.slo, [r * dist_gpus for r in rates]
    )
    vllm_gp = max_goodput(
        vllm_factory, dataset, workload.slo,
        num_requests=TRIAL_REQUESTS, min_duration=45.0,
    ).goodput / vllm_gpus
    dist_gp = max_goodput(
        dist_factory, dataset, workload.slo,
        num_requests=TRIAL_REQUESTS, min_duration=45.0,
    ).goodput / dist_gpus
    return {
        "placement": placement,
        "rates": rates,
        "vllm": [r.total for r in vllm_rep],
        "dist": [r.total for r in dist_rep],
        "vllm_ttft": [r.ttft_only for r in vllm_rep],
        "vllm_tpot": [r.tpot_only for r in vllm_rep],
        "vllm_goodput": vllm_gp,
        "dist_goodput": dist_gp,
    }


def test_fig9_tasks(benchmark):
    results = benchmark.pedantic(
        lambda: {app: run_application(app) for app in APPLICATIONS},
        rounds=1,
        iterations=1,
    )
    wins = {}
    for app, out in results.items():
        print(f"\n--- {app} (OPT-66B) | DistServe: {out['placement'].describe()}")
        print(
            format_series(
                "rate/GPU",
                out["rates"],
                {
                    "vLLM": out["vllm"],
                    "vLLM-TTFT": out["vllm_ttft"],
                    "vLLM-TPOT": out["vllm_tpot"],
                    "DistServe": out["dist"],
                },
                title=f"Figure 9 ({app}): SLO attainment vs per-GPU rate",
            )
        )
        win = (
            out["dist_goodput"] / out["vllm_goodput"]
            if out["vllm_goodput"] > 0
            else float("inf")
        )
        wins[app] = win
        print(
            f"goodput/GPU: vLLM {out['vllm_goodput']:.2f} vs DistServe "
            f"{out['dist_goodput']:.2f} -> {win:.2f}x "
            f"(paper: {'3.2x' if app == 'code-completion' else '4.48x'})"
        )
    # DistServe wins both applications.
    assert all(w > 1.0 for w in wins.values()), wins
    code = results["code-completion"]
    # Code completion is TTFT-bound for vLLM: at the highest rate its
    # TTFT attainment is far below its TPOT attainment.
    assert code["vllm_ttft"][-1] < code["vllm_tpot"][-1]
    summ = results["summarization"]
    # Summarization is TPOT-bound for vLLM (long prefills crush decode).
    assert summ["vllm_tpot"][-1] <= summ["vllm_ttft"][-1] + 0.05
