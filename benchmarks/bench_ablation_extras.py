"""Design-choice ablations called out in DESIGN.md.

1. **Pull vs push KV transfer** (§4.3 "Combat burstiness"): under bursty
   (gamma, cv=4) arrivals, the pull policy keeps decode admission gated
   on memory; push fires transfers immediately, so under pressure the
   decode side accumulates un-admittable requests. We compare decode
   queuing delay and completion under both.
2. **Dispatch policy**: least-loaded vs round-robin vs random (§4.3
   dispatches to the shortest queue).
3. **Batch shaping**: capping prefill batches near L_m vs an unshaped
   4096-token budget (§4.3 "Reducing pipeline bubbles").
4. **Chunked-prefill baseline** (SARATHI, §2.2): trades TTFT for TPOT
   relative to vLLM's prefill-priority scheduling.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table, tpot_percentile, ttft_percentile
from repro.hardware import NVLINK
from repro.latency import ParallelismConfig
from repro.models import get_model
from repro.serving import ColocatedSystem, DisaggregatedSystem, simulate_trace
from repro.simulator import InstanceSpec, PrefillInstance, RequestState, Simulation
from repro.workload import SHAREGPT, generate_trace

MODEL = get_model("opt-13b")
SPEC = InstanceSpec(model=MODEL, config=ParallelismConfig(1, 1))
N = 400


def _run(system_factory, trace):
    sim = Simulation()
    res = simulate_trace(system_factory(sim), trace, max_events=5_000_000)
    return res


def run_ablations():
    out = {}

    # 1. Pull vs push under burstiness.
    bursty = generate_trace(
        SHAREGPT, rate=7.0, num_requests=N, rng=np.random.default_rng(3),
        arrival_process="gamma", burst_cv=4.0,
    )
    for mode in ("pull", "push"):
        res = _run(
            lambda sim, m=mode: DisaggregatedSystem(
                sim, SPEC, SPEC, num_prefill=2, num_decode=1,
                transfer_link=NVLINK, transfer_mode=m,
            ),
            bursty,
        )
        out[f"transfer_{mode}"] = res

    # 2. Dispatch policies.
    steady = generate_trace(SHAREGPT, rate=10.0, num_requests=N, rng=np.random.default_rng(4))
    for policy in ("least_loaded", "round_robin", "random", "power_of_two"):
        res = _run(
            lambda sim, p=policy: DisaggregatedSystem(
                sim, SPEC, SPEC, num_prefill=3, num_decode=2,
                transfer_link=NVLINK, dispatch_policy=p,
                rng=np.random.default_rng(9),
            ),
            steady,
        )
        out[f"dispatch_{policy}"] = res

    # 3. Batch shaping (prefill token budget near L_m vs unshaped).
    trace = generate_trace(SHAREGPT, rate=8.0, num_requests=N, rng=np.random.default_rng(5))
    for label, limit in (("shaped(L_m)", None), ("unshaped(4096)", 4096)):
        sim = Simulation()
        done = []
        inst = PrefillInstance(
            sim, SPEC,
            on_prefill_done=lambda s: (done.append(s), inst.release_kv(s.request_id)),
            batch_token_limit=limit,
        )
        for req in trace:
            sim.schedule_at(
                req.arrival_time,
                lambda r=req: inst.submit(RequestState(request=r)),
            )
        sim.run(max_events=3_000_000)
        ttfts = [s.timestamps["prefill_end"] - s.request.arrival_time for s in done]
        out[f"shaping_{label}"] = float(np.percentile(ttfts, 90)) if ttfts else float("inf")

    # 4. Chunked prefill vs prefill-priority (colocated).
    trace = generate_trace(SHAREGPT, rate=2.2, num_requests=N, rng=np.random.default_rng(6))
    for policy in ("prefill_priority", "chunked"):
        res = _run(lambda sim, p=policy: ColocatedSystem(sim, SPEC, policy=p), trace)
        out[f"colocated_{policy}"] = res
    return out


def test_ablation_extras(benchmark):
    out = benchmark.pedantic(run_ablations, rounds=1, iterations=1)
    rows = []
    for mode in ("pull", "push"):
        res = out[f"transfer_{mode}"]
        dq = float(np.mean([r.decode_queue_time for r in res.records]))
        rows.append([f"KV transfer: {mode}", res.completed, dq, tpot_percentile(res.records)])
    for policy in ("least_loaded", "round_robin", "random", "power_of_two"):
        res = out[f"dispatch_{policy}"]
        rows.append(
            [f"dispatch: {policy}", res.completed,
             ttft_percentile(res.records), tpot_percentile(res.records)]
        )
    print()
    print(
        format_table(
            ["variant", "completed", "metric-1", "metric-2"],
            rows,
            title="Ablations: transfer mode (decode-queue mean / P90 TPOT), "
            "dispatch (P90 TTFT / P90 TPOT)",
            float_fmt="{:.4f}",
        )
    )
    print(
        f"\nbatch shaping P90 TTFT: shaped {out['shaping_shaped(L_m)']:.3f}s vs "
        f"unshaped {out['shaping_unshaped(4096)']:.3f}s"
    )
    pp = out["colocated_prefill_priority"]
    ck = out["colocated_chunked"]
    print(
        f"chunked-prefill trade (SARATHI): P90 TTFT {ttft_percentile(pp.records):.3f}"
        f"->{ttft_percentile(ck.records):.3f}, "
        f"P90 TPOT {tpot_percentile(pp.records):.4f}->{tpot_percentile(ck.records):.4f}"
    )

    # Pull keeps decode queuing no worse than push under bursts and both
    # complete the trace.
    assert out["transfer_pull"].unfinished == 0
    pull_dq = np.mean([r.decode_queue_time for r in out["transfer_pull"].records])
    push_dq = np.mean([r.decode_queue_time for r in out["transfer_push"].records])
    assert pull_dq <= push_dq + 1e-3
    # Least-loaded dispatch beats random on tail TTFT.
    assert ttft_percentile(out["dispatch_least_loaded"].records) <= ttft_percentile(
        out["dispatch_random"].records
    ) * 1.05
    # Two random choices beat one (balls-into-bins): power-of-two's tail
    # TTFT tracks least-loaded far more closely than blind random does.
    assert ttft_percentile(out["dispatch_power_of_two"].records) <= ttft_percentile(
        out["dispatch_random"].records
    ) * 1.05
    # Chunked prefill trades TTFT for TPOT (the §2.2 claim): TPOT improves
    # (or matches) while TTFT worsens (or matches).
    assert tpot_percentile(ck.records) <= tpot_percentile(pp.records) * 1.10
    assert ttft_percentile(ck.records) >= ttft_percentile(pp.records) * 0.90
