"""Figure 12: placement-algorithm running time vs GPUs per instance.

The paper runs both algorithms on a 96-core CPU node and reports
runtimes in seconds-to-minutes, scaling with the number of GPUs
(``N x M``) available to one instance and independent of model size
(the simulator only walks discrete events). We time our Algorithm 1
and Algorithm 2 implementations across cluster sizes and check the
same qualitative properties.

The second half benchmarks the search-acceleration layer
(:mod:`repro.core.search`): the same sweep is run once *unaccelerated*
(no cache, no pruning, no early abort, serial) and then once per
``workers`` setting with the accelerated defaults, sharing one trial
cache across the sweep the way a real capacity study would. Speedups
and the placement-parity check land in ``BENCH_search.json``.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.analysis import format_table
from repro.core import (
    PlacementSearchStats,
    TrialCache,
    place_high_affinity,
    place_low_affinity,
)
from repro.hardware import Cluster, Node
from repro.models import get_model
from repro.workload import SLO, get_dataset

DATASET = get_dataset("sharegpt")
SLO_13B = SLO(ttft=0.2, tpot=0.1)
CLUSTER_SIZES = [(1, 2), (1, 4), (2, 4)]  # (nodes, gpus/node)
N_REQ = 60  # small trials: we time the search machinery, not accuracy
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_search.json"


def run_figure12():
    rows = []
    for num_nodes, gpn in CLUSTER_SIZES:
        cluster = Cluster(nodes=[Node(index=i, num_gpus=gpn) for i in range(num_nodes)])
        for name, fn, kwargs in (
            ("Alg1 (High)", place_high_affinity, {}),
            ("Alg2 (Low)", place_low_affinity, {"joint_sim_candidates": 2}),
        ):
            for model_name in ("opt-13b", "opt-66b"):
                model = get_model(model_name)
                stats = PlacementSearchStats()
                start = time.perf_counter()
                try:
                    fn(
                        model, cluster, DATASET, SLO_13B,
                        traffic_rate=None, num_requests=N_REQ,
                        stats=stats, trial_cache=False, **kwargs,
                    )
                    elapsed = time.perf_counter() - start
                except RuntimeError:
                    elapsed = time.perf_counter() - start
                rows.append(
                    [
                        f"{num_nodes}x{gpn}",
                        name,
                        model_name,
                        elapsed,
                        stats.configs_evaluated,
                        stats.simulation_trials,
                    ]
                )
    return rows


def test_fig12_algorithm_time(benchmark):
    rows = benchmark.pedantic(run_figure12, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["cluster", "algorithm", "model", "seconds", "configs", "sim trials"],
            rows,
            title="Figure 12: placement algorithm running time",
            float_fmt="{:.1f}",
        )
    )
    # More GPUs -> more configurations enumerated (for the same algorithm
    # and model).
    alg1_13b = [r for r in rows if r[1] == "Alg1 (High)" and r[2] == "opt-13b"]
    configs = [r[4] for r in alg1_13b]
    assert configs == sorted(configs) and configs[-1] > configs[0]
    # Every search completes within minutes even at the largest size —
    # the paper's practicality claim.
    assert all(r[3] < 600 for r in rows)


# ----------------------------------------------------------------------
# Search-acceleration benchmark (BENCH_search.json)
# ----------------------------------------------------------------------

def _sweep_searches(quick: bool):
    """The (label, fn, model, cluster, kwargs) sweep both modes run.

    Cluster sizes are nested — the (tp, pp) candidate sets of a 1x2
    cluster are a subset of 1x4's, which are a subset of 2x4's — so the
    shared trial cache gets genuine cross-search hits, exactly the
    replanning/capacity-study access pattern it exists for. The sweep
    ends with a *replan* pass over the largest cluster: the paper's
    controller (§4.3) re-runs the search on unchanged inputs whenever it
    checks for workload drift, which a warm cache answers from memory.
    """
    sizes = CLUSTER_SIZES[:2] if quick else CLUSTER_SIZES
    searches = []
    model = get_model("opt-13b")
    for num_nodes, gpn in sizes:
        cluster = Cluster(
            nodes=[Node(index=i, num_gpus=gpn) for i in range(num_nodes)]
        )
        searches.append(
            (f"alg1-{num_nodes}x{gpn}", place_high_affinity, model, cluster, {})
        )
        searches.append(
            (
                f"alg2-{num_nodes}x{gpn}",
                place_low_affinity,
                model,
                cluster,
                # Deep enough that the estimate-dominance early stop has
                # later joint-simulation waves to skip.
                {"joint_sim_candidates": 4},
            )
        )
    # Replanning pass: repeat the largest cluster's searches verbatim.
    for label, fn, mdl, cluster, kwargs in list(searches[-2:]):
        searches.append((f"{label}-replan", fn, mdl, cluster, kwargs))
    return searches


def _run_sweep(searches, *, workers, accelerated, num_requests):
    """Run the sweep; return (total seconds, per-search rows, stats, placements)."""
    cache = TrialCache()  # fresh per mode, shared across the sweep inside it
    stats = PlacementSearchStats()
    placements, rows = [], []
    total = 0.0
    for label, fn, model, cluster, kwargs in searches:
        t0 = time.perf_counter()
        try:
            placement = fn(
                model, cluster, DATASET, SLO_13B,
                traffic_rate=None, num_requests=num_requests,
                stats=stats, workers=workers,
                trial_cache=cache if accelerated else False,
                prune=accelerated, early_abort=accelerated,
                **kwargs,
            )
        except RuntimeError:
            placement = None
        elapsed = time.perf_counter() - t0
        total += elapsed
        placements.append(placement)
        rows.append({"search": label, "seconds": round(elapsed, 3)})
    return total, rows, stats, placements


def run_search_bench(workers_list=(1, 4, 8), quick=False, num_requests=N_REQ):
    """Benchmark the search-acceleration layer against the naive search."""
    searches = _sweep_searches(quick)
    base_total, base_rows, base_stats, base_placements = _run_sweep(
        searches, workers=1, accelerated=False, num_requests=num_requests
    )
    report = {
        "description": "placement-search acceleration (cache + pruning + "
                       "early abort + worker processes) vs unaccelerated search",
        "num_requests": num_requests,
        "quick": quick,
        "searches": [label for label, *_ in searches],
        "baseline": {
            "wall_time_s": round(base_total, 3),
            "per_search": base_rows,
            "simulation_trials": base_stats.simulation_trials,
        },
        "runs": [],
        "placement_parity": True,
    }
    for workers in workers_list:
        total, rows, stats, placements = _run_sweep(
            searches, workers=workers, accelerated=True, num_requests=num_requests
        )
        if placements != base_placements:
            report["placement_parity"] = False
        report["runs"].append(
            {
                "workers": workers,
                "wall_time_s": round(total, 3),
                "speedup_vs_baseline": round(base_total / total, 2) if total else None,
                "per_search": rows,
                "stats": {
                    "simulation_trials": stats.simulation_trials,
                    "configs_pruned": stats.configs_pruned,
                    "cache_hits": stats.cache_hits,
                    "cache_misses": stats.cache_misses,
                    "cache_hit_rate": round(stats.cache_hit_rate, 3),
                    "trials_aborted": stats.trials_aborted,
                    "trials_truncated": stats.trials_truncated,
                },
            }
        )
    return report


def test_search_acceleration(benchmark):
    report = benchmark.pedantic(
        lambda: run_search_bench(workers_list=(1, 4), quick=True),
        rounds=1, iterations=1,
    )
    print()
    print(json.dumps(report, indent=2))
    # The accelerated search must return the exact placements of the
    # naive one — acceleration is an optimization, never a result change.
    assert report["placement_parity"]
    # Cache + pruning + early abort must beat the naive search outright,
    # even serially.
    serial = next(r for r in report["runs"] if r["workers"] == 1)
    assert serial["speedup_vs_baseline"] > 1.0
    assert serial["stats"]["cache_hits"] > 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers", default="1,4,8",
        help="comma-separated worker counts to sweep (default: 1,4,8)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sweep (fewer cluster sizes) for CI smoke runs",
    )
    parser.add_argument(
        "--requests", type=int, default=N_REQ,
        help=f"trace length per simulation trial (default: {N_REQ})",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help=f"output JSON path (default: {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)
    workers_list = tuple(int(w) for w in args.workers.split(",") if w.strip())
    report = run_search_bench(
        workers_list=workers_list, quick=args.quick, num_requests=args.requests
    )
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    base = report["baseline"]["wall_time_s"]
    print(f"baseline (unaccelerated, serial): {base:.1f}s")
    for run in report["runs"]:
        print(
            f"workers={run['workers']}: {run['wall_time_s']:.1f}s "
            f"({run['speedup_vs_baseline']}x), "
            f"hit rate {run['stats']['cache_hit_rate']:.1%}, "
            f"{run['stats']['configs_pruned']} pruned, "
            f"{run['stats']['trials_aborted']} aborted"
        )
    print(f"placement parity: {report['placement_parity']}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
