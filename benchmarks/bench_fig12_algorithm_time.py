"""Figure 12: placement-algorithm running time vs GPUs per instance.

The paper runs both algorithms on a 96-core CPU node and reports
runtimes in seconds-to-minutes, scaling with the number of GPUs
(``N x M``) available to one instance and independent of model size
(the simulator only walks discrete events). We time our Algorithm 1
and Algorithm 2 implementations across cluster sizes and check the
same qualitative properties.
"""

from __future__ import annotations

import time

from repro.analysis import format_table
from repro.core import PlacementSearchStats, place_high_affinity, place_low_affinity
from repro.hardware import Cluster, Node
from repro.models import get_model
from repro.workload import SLO, get_dataset

DATASET = get_dataset("sharegpt")
SLO_13B = SLO(ttft=0.2, tpot=0.1)
CLUSTER_SIZES = [(1, 2), (1, 4), (2, 4)]  # (nodes, gpus/node)
N_REQ = 60  # small trials: we time the search machinery, not accuracy


def run_figure12():
    rows = []
    for num_nodes, gpn in CLUSTER_SIZES:
        cluster = Cluster(nodes=[Node(index=i, num_gpus=gpn) for i in range(num_nodes)])
        for name, fn, kwargs in (
            ("Alg1 (High)", place_high_affinity, {}),
            ("Alg2 (Low)", place_low_affinity, {"joint_sim_candidates": 2}),
        ):
            for model_name in ("opt-13b", "opt-66b"):
                model = get_model(model_name)
                stats = PlacementSearchStats()
                start = time.perf_counter()
                try:
                    fn(
                        model, cluster, DATASET, SLO_13B,
                        traffic_rate=None, num_requests=N_REQ,
                        stats=stats, **kwargs,
                    )
                    elapsed = time.perf_counter() - start
                except RuntimeError:
                    elapsed = time.perf_counter() - start
                rows.append(
                    [
                        f"{num_nodes}x{gpn}",
                        name,
                        model_name,
                        elapsed,
                        stats.configs_evaluated,
                        stats.simulation_trials,
                    ]
                )
    return rows


def test_fig12_algorithm_time(benchmark):
    rows = benchmark.pedantic(run_figure12, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["cluster", "algorithm", "model", "seconds", "configs", "sim trials"],
            rows,
            title="Figure 12: placement algorithm running time",
            float_fmt="{:.1f}",
        )
    )
    # More GPUs -> more configurations enumerated (for the same algorithm
    # and model).
    alg1_13b = [r for r in rows if r[1] == "Alg1 (High)" and r[2] == "opt-13b"]
    configs = [r[4] for r in alg1_13b]
    assert configs == sorted(configs) and configs[-1] > configs[0]
    # Every search completes within minutes even at the largest size —
    # the paper's practicality claim.
    assert all(r[3] < 600 for r in rows)
