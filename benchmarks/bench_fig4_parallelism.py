"""Figure 4: prefill-instance parallelism preference (66B on 2 GPUs).

*(a)* Average TTFT vs arrival rate for 2-way inter-op vs 2-way intra-op
parallelism — intra-op wins at low rates (execution-time dominated),
inter-op at high rates (queuing dominated). Verified two ways: the
M/D/1 closed forms (Eq. 1-3) and the discrete-event simulator.
*(b)* Sensitivity to the intra-op speedup coefficient K.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_series
from repro.hardware import A100_80GB
from repro.latency import (
    ParallelismConfig,
    coefficients_from_roofline,
    intra_op_speedup,
    prefill_times,
)
from repro.models import get_model
from repro.queueing import avg_ttft_inter_op, avg_ttft_intra_op, crossover_rate
from repro.serving import PrefillOnlySystem, simulate_trace
from repro.simulator import InstanceSpec, Simulation
from repro.workload import fixed_length_dataset, generate_trace

MODEL = get_model("opt-66b")
COEFFS = coefficients_from_roofline(A100_80GB)
INPUT_LEN = 512
N = 250


def run_figure4():
    base = prefill_times(MODEL, ParallelismConfig(1, 1), COEFFS, [INPUT_LEN])
    d = base.request_latency
    k = intra_op_speedup(MODEL, COEFFS, INPUT_LEN, 2)
    max_rate = min(k, 2.0) / d
    rates = [max_rate * f for f in (0.1, 0.3, 0.5, 0.7, 0.85, 0.95)]

    analytic = {
        "inter-op (M/D/1)": [avg_ttft_inter_op(r, d, 2) for r in rates],
        "intra-op (M/D/1)": [avg_ttft_intra_op(r, d, k) for r in rates],
    }

    # DES cross-check with deterministic lengths and Poisson arrivals.
    dataset = fixed_length_dataset(INPUT_LEN, 1)
    des = {"inter-op (DES)": [], "intra-op (DES)": []}
    for name, config in (
        ("inter-op (DES)", ParallelismConfig(1, 2)),
        ("intra-op (DES)", ParallelismConfig(2, 1)),
    ):
        spec = InstanceSpec(model=MODEL, config=config)
        for rate in rates:
            trace = generate_trace(dataset, rate, N, np.random.default_rng(2))
            sim = Simulation()
            res = simulate_trace(PrefillOnlySystem(sim, spec), trace, max_events=3_000_000)
            des[name].append(float(np.mean([rec.ttft for rec in res.records])))

    # (b) varying K.
    k_values = [1.2, 1.4, 1.6, 1.8, 2.0]
    k_sweep = {
        f"K={kv}": [
            # Intra-op is stable only while R*D < K (utilization < 1).
            avg_ttft_intra_op(r, d, kv) if r * d < kv * 0.999 else float("nan")
            for r in rates
        ]
        for kv in k_values
    }
    return d, k, rates, analytic, des, k_sweep


def test_fig4_parallelism(benchmark):
    d, k, rates, analytic, des, k_sweep = benchmark.pedantic(
        run_figure4, rounds=1, iterations=1
    )
    print(f"\nexecution time D = {d * 1e3:.0f} ms, measured speedup K = {k:.2f}")
    print(
        format_series(
            "rate(req/s)",
            [round(r, 2) for r in rates],
            {**analytic, **des},
            title="Figure 4(a): average TTFT (s), OPT-66B on 2 GPUs",
        )
    )
    print()
    print(
        format_series(
            "rate(req/s)",
            [round(r, 2) for r in rates],
            k_sweep,
            title="Figure 4(b): intra-op average TTFT (s) for varying K",
        )
    )
    rc = crossover_rate(d, k, 2)
    print(f"\nanalytic crossover rate: {rc:.2f} req/s")

    # Shape: intra wins at the lowest rate, inter at the highest.
    assert analytic["intra-op (M/D/1)"][0] < analytic["inter-op (M/D/1)"][0]
    assert analytic["intra-op (M/D/1)"][-1] > analytic["inter-op (M/D/1)"][-1]
    # DES agrees with the closed form within 25% at low-to-mid load.
    for name_a, name_d in (
        ("inter-op (M/D/1)", "inter-op (DES)"),
        ("intra-op (M/D/1)", "intra-op (DES)"),
    ):
        for i in range(3):
            rel = abs(des[name_d][i] - analytic[name_a][i]) / analytic[name_a][i]
            assert rel < 0.25, (name_d, i, rel)
    # Smaller K weakens intra-op (Figure 4b).
    assert k_sweep["K=1.2"][2] > k_sweep["K=2.0"][2]
