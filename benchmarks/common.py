"""Shared helpers for the paper-reproduction benchmarks.

Each ``bench_*`` file regenerates one table or figure of the paper and
prints the same rows/series the paper reports. Expensive artifacts
(placement searches) are cached per process so benches can share them.
"""

from __future__ import annotations

import functools
import json
import pathlib
from dataclasses import dataclass

import numpy as np

from repro.analysis import AttainmentReport, phase_utilization, slo_attainment
from repro.core import Placement, build_system, place_high_affinity, place_low_affinity
from repro.hardware import Cluster, paper_testbed
from repro.latency import ParallelismConfig
from repro.models import get_model
from repro.serving import ColocatedSystem, SimulationResult, simulate_trace
from repro.simulator import InstanceSpec, MetricsRegistry, Simulation, SloMonitor
from repro.workload import SLO, generate_trace, get_dataset, get_workload

#: Requests per simulation trial. Modest so the full bench suite stays
#: in CI-friendly time; raise for tighter confidence intervals.
TRIAL_REQUESTS = 300

#: vLLM baseline intra-op degrees per model, following the paper (§6.1).
VLLM_TP = {"opt-13b": 1, "opt-66b": 4, "opt-175b": 8}


def vllm_system_factory(model_name: str, num_replicas: int = 1):
    """The paper's baseline: colocated vLLM with its published TP setting."""
    model = get_model(model_name)
    spec = InstanceSpec(model=model, config=ParallelismConfig(VLLM_TP[model_name], 1))

    def factory(sim: Simulation) -> ColocatedSystem:
        return ColocatedSystem(sim, spec, num_replicas=num_replicas)

    return factory, spec.num_gpus * num_replicas


#: On-disk cache of placement searches (minutes each on one core);
#: delete this file to force re-searching.
_CACHE_PATH = pathlib.Path(__file__).with_name(".placement_cache.json")


def _placement_to_json(p: Placement) -> dict:
    return {
        "prefill": [p.prefill.config.tp, p.prefill.config.pp,
                    p.prefill.num_instances, p.prefill.goodput_per_instance],
        "decode": [p.decode.config.tp, p.decode.config.pp,
                   p.decode.num_instances, p.decode.goodput_per_instance],
        "intra": p.kv_transfer_intra_node,
    }


def _placement_from_json(d: dict) -> Placement:
    from repro.core import PhasePlan

    ptp, ppp, pn, pg = d["prefill"]
    dtp, dpp, dn, dg = d["decode"]
    return Placement(
        prefill=PhasePlan(ParallelismConfig(ptp, ppp), pn, pg),
        decode=PhasePlan(ParallelismConfig(dtp, dpp), dn, dg),
        kv_transfer_intra_node=d["intra"],
    )


def _load_cache() -> dict:
    if _CACHE_PATH.exists():
        try:
            return json.loads(_CACHE_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            return {}
    return {}


@functools.lru_cache(maxsize=None)
def distserve_placement(
    application: str, model_name: str, low_affinity: bool = True
) -> Placement:
    """Search (and cache) the DistServe placement for a Table 1 workload."""
    key = f"{application}/{model_name}/{'low' if low_affinity else 'high'}"
    cache = _load_cache()
    if key in cache:
        return _placement_from_json(cache[key])
    workload = get_workload(application, model_name)
    dataset = get_dataset(workload.dataset_name)
    cluster = paper_testbed()
    search = place_low_affinity if low_affinity else place_high_affinity
    kwargs = dict(
        traffic_rate=None,  # one deployment unit; we sweep per-GPU rate
        num_requests=150,
        attainment_target=0.9,
    )
    if low_affinity:
        kwargs["joint_sim_candidates"] = 2
    placement = search(get_model(model_name), cluster, dataset, workload.slo, **kwargs)
    cache = _load_cache()
    cache[key] = _placement_to_json(placement)
    try:
        _CACHE_PATH.write_text(json.dumps(cache, indent=2))
    except OSError:
        pass
    return placement


def distserve_system_factory(application: str, model_name: str, low_affinity: bool = True):
    """A factory building the searched DistServe deployment."""
    placement = distserve_placement(application, model_name, low_affinity)
    model = get_model(model_name)
    cluster = paper_testbed()

    def factory(sim: Simulation):
        return build_system(sim, model, placement, cluster)

    return factory, placement.num_gpus, placement


def attainment_sweep(
    system_factory,
    dataset,
    slo: SLO,
    rates: "list[float]",
    num_requests: int = TRIAL_REQUESTS,
    seed: int = 0,
) -> "list[AttainmentReport]":
    """Attainment at each rate — one row of a Figure 8-style plot."""
    reports = []
    for rate in rates:
        # Traces must span several request residence times to expose
        # steady-state queuing (a 175B request decodes for ~30 s).
        n = max(num_requests, int(rate * 45.0))
        trace = generate_trace(
            dataset, rate=rate, num_requests=n,
            rng=np.random.default_rng(seed),
        )
        sim = Simulation()
        system = system_factory(sim)
        result = simulate_trace(system, trace, max_events=5_000_000)
        reports.append(slo_attainment(result.records, slo, num_expected=len(trace)))
    return reports


@dataclass
class InstrumentedTrial:
    """One fully-instrumented trial: attainment plus the live-metrics view."""

    report: AttainmentReport
    utilization: "dict[str, float]"
    registry: MetricsRegistry
    monitor: SloMonitor
    result: SimulationResult


def run_instrumented_trial(
    system_factory,
    dataset,
    slo: SLO,
    rate: float,
    num_requests: int = TRIAL_REQUESTS,
    seed: int = 0,
    window: float = 30.0,
) -> InstrumentedTrial:
    """One trial with the metrics registry and SLO monitor attached.

    Same trace construction as :func:`attainment_sweep`, plus a
    :class:`~repro.simulator.SloMonitor` observing every request and a
    registry instrumenting every component — so benchmarks can report
    per-phase utilization and violation streaks next to attainment.
    """
    n = max(num_requests, int(rate * 45.0))
    trace = generate_trace(
        dataset, rate=rate, num_requests=n, rng=np.random.default_rng(seed)
    )
    sim = Simulation()
    system = system_factory(sim)
    registry = MetricsRegistry()
    monitor = SloMonitor(sim, slo, window=window, registry=registry)
    system.attach_monitor(monitor)
    system.instrument(registry)
    result = simulate_trace(system, trace, max_events=5_000_000)
    report = slo_attainment(result.records, slo, num_expected=len(trace))
    return InstrumentedTrial(
        report=report,
        utilization=phase_utilization(registry),
        registry=registry,
        monitor=monitor,
        result=result,
    )


def attainment_utilization_sweep(
    system_factory,
    dataset,
    slo: SLO,
    rates: "list[float]",
    num_requests: int = TRIAL_REQUESTS,
    seed: int = 0,
) -> "list[InstrumentedTrial]":
    """Instrumented variant of :func:`attainment_sweep` — one trial per
    rate, each carrying per-phase utilization alongside attainment."""
    return [
        run_instrumented_trial(
            system_factory, dataset, slo, rate,
            num_requests=num_requests, seed=seed,
        )
        for rate in rates
    ]


def goodput_from_sweep(rates: "list[float]", reports: "list[AttainmentReport]",
                       target: float = 0.9) -> float:
    """Max swept rate whose attainment meets the target (0 if none)."""
    best = 0.0
    for rate, report in zip(rates, reports):
        if report.total >= target:
            best = max(best, rate)
    return best
