"""Figure 8: chatbot end-to-end, OPT-13B/66B/175B on ShareGPT.

Row 1: SLO attainment vs per-GPU rate for vLLM (colocated, the paper's
TP settings) and DistServe (our placement search on the 4x8xA100
testbed). Row 2: attainment vs SLO Scale at a fixed rate. The paper
reports DistServe sustaining 2.0x-3.41x higher rates and 1.4x-1.8x
tighter SLOs.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import (
    TRIAL_REQUESTS,
    attainment_sweep,
    distserve_system_factory,
    vllm_system_factory,
)
from repro.core import max_goodput
from repro.analysis import format_series, slo_attainment
from repro.serving import simulate_trace
from repro.simulator import Simulation
from repro.workload import generate_trace, get_dataset, get_workload

MODELS = ["opt-13b", "opt-66b", "opt-175b"]
#: Per-GPU rate grids, scaled to each model's capability band.
PER_GPU_RATES = {
    "opt-13b": [0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0],
    "opt-66b": [0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 1.0],
    "opt-175b": [0.02, 0.05, 0.08, 0.12, 0.18, 0.25, 0.35, 0.5],
}
SLO_SCALES = [0.4, 0.6, 0.8, 1.0, 1.2, 1.5]


def run_model(model_name):
    workload = get_workload("chatbot", model_name)
    dataset = get_dataset(workload.dataset_name)
    vllm_factory, vllm_gpus = vllm_system_factory(model_name)
    dist_factory, dist_gpus, placement = distserve_system_factory("chatbot", model_name)

    rates = PER_GPU_RATES[model_name]
    vllm_rates = [r * vllm_gpus for r in rates]
    dist_rates = [r * dist_gpus for r in rates]
    vllm_rep = attainment_sweep(vllm_factory, dataset, workload.slo, vllm_rates)
    dist_rep = attainment_sweep(dist_factory, dataset, workload.slo, dist_rates)

    # Precise per-GPU goodput via binary search (the grid above is for
    # curve display; thresholds between grid points would quantize the
    # headline factor).
    vllm_gp = max_goodput(
        vllm_factory, dataset, workload.slo,
        num_requests=TRIAL_REQUESTS, min_duration=45.0,
    ).goodput / vllm_gpus
    dist_gp = max_goodput(
        dist_factory, dataset, workload.slo,
        num_requests=TRIAL_REQUESTS, min_duration=45.0,
    ).goodput / dist_gpus
    scale_att = {"vLLM": [], "DistServe": []}
    for scale in SLO_SCALES:
        slo = workload.slo.scaled(scale)
        for name, factory, gpus, gp in (
            ("vLLM", vllm_factory, vllm_gpus, vllm_gp),
            ("DistServe", dist_factory, dist_gpus, dist_gp),
        ):
            rate = max(gp, rates[0]) * 0.7 * gpus
            trace = generate_trace(
                dataset, rate, TRIAL_REQUESTS, np.random.default_rng(0)
            )
            sim = Simulation()
            res = simulate_trace(factory(sim), trace, max_events=5_000_000)
            scale_att[name].append(
                slo_attainment(res.records, slo, num_expected=len(trace)).total
            )
    return {
        "placement": placement,
        "vllm": [r.total for r in vllm_rep],
        "dist": [r.total for r in dist_rep],
        "vllm_ttft": [r.ttft_only for r in vllm_rep],
        "dist_ttft": [r.ttft_only for r in dist_rep],
        "vllm_tpot": [r.tpot_only for r in vllm_rep],
        "dist_tpot": [r.tpot_only for r in dist_rep],
        "vllm_goodput": vllm_gp,
        "dist_goodput": dist_gp,
        "scale_att": scale_att,
    }


def test_fig8_chatbot(benchmark):
    results = benchmark.pedantic(
        lambda: {m: run_model(m) for m in MODELS}, rounds=1, iterations=1
    )
    wins = []
    for model_name in MODELS:
        out = results[model_name]
        print(f"\n--- {model_name} | DistServe placement: {out['placement'].describe()}")
        print(
            format_series(
                "rate/GPU",
                PER_GPU_RATES[model_name],
                {
                    "vLLM": out["vllm"],
                    "DistServe": out["dist"],
                    "Dist-TTFT": out["dist_ttft"],
                    "Dist-TPOT": out["dist_tpot"],
                },
                title=f"Figure 8 (row 1, {model_name}): SLO attainment vs per-GPU rate",
            )
        )
        print(
            format_series(
                "SLO scale",
                SLO_SCALES,
                out["scale_att"],
                title=f"Figure 8 (row 2, {model_name}): attainment vs SLO scale",
            )
        )
        win = (
            out["dist_goodput"] / out["vllm_goodput"]
            if out["vllm_goodput"] > 0
            else float("inf")
        )
        wins.append(win)
        print(
            f"goodput/GPU: vLLM {out['vllm_goodput']:.2f} vs "
            f"DistServe {out['dist_goodput']:.2f} -> {win:.2f}x (paper: 2.0-3.41x)"
        )
    # Reproduction band: DistServe matches or beats the colocated
    # baseline on every model (>= 0.75x accounts for our idealized
    # baseline lacking the production overheads that penalized vLLM on
    # the paper's testbed — see EXPERIMENTS.md), and shows a clear win
    # on at least one model.
    assert all(w >= 0.75 for w in wins), wins
    assert max(wins) >= 1.25, wins
