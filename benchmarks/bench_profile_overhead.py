"""Profiler overhead benchmark: the <5% instrumentation budget.

The critical-path profiler hooks sit on the simulator's hottest paths —
one ``record_exec`` per executed batch/step, one ``record_transfer``
per KV migration, pending-interval reconciliation on every pull-queue
mutation. The design contract (DESIGN §4g) is that enabling them costs
under 5% wall time over an identical traced run: the hooks append plain
tuples behind an ``enabled`` guard and never aggregate inline
(reprolint OBS001 enforces the discipline).

This benchmark proves the contract on a fixed-seed disaggregated
workload, timing three configurations with min-of-K ``perf_counter``
(min, not mean — scheduling noise only ever adds time):

* **bare** — no tracer, no profiler (the NULL-object fast path);
* **traced** — tracer only, the pre-existing observability cost;
* **profiled** — tracer + profiler hooks; the one-shot
  ``build_profile`` analysis pass is timed separately (it runs once
  after the event queue drains, off the per-event hot path).

It also re-verifies purity: the profiled run's span stream must be
byte-identical to the traced run's, i.e. profiling observed the same
simulation it measured. Results land in ``BENCH_profile.json``; exit
status is nonzero when the overhead budget is blown.

Usage::

    PYTHONPATH=src python benchmarks/bench_profile_overhead.py
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.analysis import build_profile
from repro.models import get_model
from repro.serving import DisaggregatedSystem, simulate_trace
from repro.simulator import InstanceSpec, Profiler, Simulation, Tracer, to_jsonl
from repro.workload import generate_trace, get_dataset

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_profile.json"


def _run_once(args, with_tracer: bool, with_profiler: bool):
    """One full simulation; returns (elapsed_s, spans, result, report)."""
    model = get_model(args.model)
    spec = InstanceSpec(model=model)
    trace = generate_trace(
        get_dataset(args.dataset), rate=args.rate,
        num_requests=args.requests, rng=np.random.default_rng(args.seed),
    )
    # Collect before and disable during the timed region: a GC pass
    # landing inside one run but not another swamps a few-percent
    # comparison on a sub-second workload.
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        sim = Simulation()
        tracer = Tracer() if with_tracer else None
        profiler = Profiler() if with_profiler else None
        system = DisaggregatedSystem(
            sim, spec, spec, num_prefill=args.num_prefill,
            num_decode=args.num_decode, tracer=tracer, profiler=profiler,
        )
        result = simulate_trace(system, trace)
        elapsed = time.perf_counter() - t0
    finally:
        gc.enable()
    report = None
    report_s = 0.0
    if with_profiler:
        # The one-shot report build is timed separately: the <5% budget
        # governs the per-event hooks riding the simulation, not the
        # post-run analysis pass (which runs once, off the hot path).
        t1 = time.perf_counter()
        report = build_profile(
            tracer.spans if tracer else [],
            profiler=profiler,
            sim_time=result.sim_time,
            num_gpus=result.num_gpus,
        )
        report_s = time.perf_counter() - t1
    spans = tracer.spans if tracer else []
    return elapsed, report_s, spans, result, report


def _time_configs(args):
    """Interleaved min-of-K timing of all three configurations.

    Interleaving (bare, traced, profiled per round, rather than K of
    each back to back) spreads frequency/thermal drift evenly across
    the configurations, which matters when the quantity under test is a
    few percent of a sub-second run.
    """
    best = {"bare": float("inf"), "traced": float("inf"),
            "profiled": float("inf")}
    best_report = float("inf")
    artifacts = {}
    for _ in range(args.repeats):
        for name, with_tracer, with_profiler in (
            ("bare", False, False),
            ("traced", True, False),
            ("profiled", True, True),
        ):
            elapsed, report_s, spans, result, report = _run_once(
                args, with_tracer, with_profiler
            )
            best[name] = min(best[name], elapsed)
            if with_profiler:
                best_report = min(best_report, report_s)
            artifacts[name] = (spans, result, report)
    return best, best_report, artifacts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="opt-13b")
    parser.add_argument("--dataset", default="sharegpt")
    parser.add_argument("--rate", type=float, default=4.0)
    parser.add_argument("--requests", type=int, default=500,
                        help="workload size; long enough that scheduler "
                             "noise stays well under the 5%% budget")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--num-prefill", type=int, default=2)
    parser.add_argument("--num-decode", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repetitions; min is reported")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="max tolerated profiled-vs-traced overhead")
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args(argv)

    best, report_s, artifacts = _time_configs(args)
    bare_s, traced_s, profiled_s = (
        best["bare"], best["traced"], best["profiled"]
    )
    _, bare_result, _ = artifacts["bare"]
    traced_spans, traced_result, _ = artifacts["traced"]
    profiled_spans, profiled_result, report = artifacts["profiled"]

    # Purity re-check: instrumentation observed, never steered.
    assert to_jsonl(traced_spans) == to_jsonl(profiled_spans), (
        "profiled run diverged from traced run — the profiler is not a "
        "pure observer"
    )
    assert (
        bare_result.sim_time == traced_result.sim_time == profiled_result.sim_time
    ), "instrumentation changed virtual time"

    overhead_vs_traced = profiled_s / traced_s - 1.0
    overhead_vs_bare = profiled_s / bare_s - 1.0
    doc = {
        "description": (
            "critical-path profiler overhead: bare vs traced vs "
            "traced+profiled (min-of-K wall time, identical seeded run)"
        ),
        "config": {
            "model": args.model,
            "dataset": args.dataset,
            "rate": args.rate,
            "requests": args.requests,
            "seed": args.seed,
            "num_prefill": args.num_prefill,
            "num_decode": args.num_decode,
            "repeats": args.repeats,
        },
        "bare_s": round(bare_s, 6),
        "traced_s": round(traced_s, 6),
        "profiled_s": round(profiled_s, 6),
        "report_build_s": round(report_s, 6),
        "overhead_vs_traced": round(overhead_vs_traced, 4),
        "overhead_vs_bare": round(overhead_vs_bare, 4),
        "threshold": args.threshold,
        "within_budget": overhead_vs_traced < args.threshold,
        "spans": len(profiled_spans),
        "exec_events": report["summary"]["exec_events"],
        "transfer_events": report["summary"]["transfer_events"],
        "completed": report["summary"]["completed"],
    }
    Path(args.out).write_text(json.dumps(doc, indent=2) + "\n")

    print(f"bare     {bare_s * 1e3:8.1f} ms")
    print(f"traced   {traced_s * 1e3:8.1f} ms")
    print(f"profiled {profiled_s * 1e3:8.1f} ms  "
          f"({doc['exec_events']} exec events, "
          f"{doc['transfer_events']} transfers)")
    print(f"report build (one-shot, off the hot path): {report_s * 1e3:.1f} ms")
    print(f"profiler overhead vs traced: {overhead_vs_traced:+.1%} "
          f"(budget {args.threshold:.0%})")
    print(f"report written to {args.out}")
    if not doc["within_budget"]:
        print("FAIL: profiler overhead exceeds budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
