"""Perf-trajectory guard: the search-acceleration speedup must not rot.

``BENCH_search.json`` at the repo root is the committed performance
baseline of the §4e search-acceleration layer (cache + pruning + early
abort + workers vs the naive search). CI regenerates a fresh report on
every run; this checker compares the fresh ``speedup_vs_baseline``
against the committed one, per worker count, and fails when any
speedup regressed by more than ``--tolerance`` (default 20%).

The comparison is deliberately a *ratio of ratios*: absolute seconds
differ across runners and across quick/full workload sizes, but the
accelerated-vs-naive speedup is measured within one run on one machine,
so it transfers. A >20% drop means the acceleration layer itself lost
ground — a cache that stopped hitting, pruning that stopped firing —
not that the runner was slow.

Usage (what CI runs)::

    python benchmarks/check_search_trajectory.py \
        --baseline BENCH_search.json --fresh BENCH_search_ci.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_search.json"


def _speedups(report: dict) -> "dict[int, float]":
    out = {}
    for run in report.get("runs", []):
        speedup = run.get("speedup_vs_baseline")
        if speedup is not None:
            out[int(run["workers"])] = float(speedup)
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="committed BENCH_search.json")
    parser.add_argument("--fresh", required=True,
                        help="report produced by this CI run")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="max tolerated fractional speedup regression")
    args = parser.parse_args(argv)

    try:
        baseline = json.loads(Path(args.baseline).read_text())
        fresh = json.loads(Path(args.fresh).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_search_trajectory: cannot read report: {exc}",
              file=sys.stderr)
        return 2

    if not fresh.get("placement_parity", False):
        print("FAIL: fresh run broke placement parity — the accelerated "
              "search returned different placements than the naive one",
              file=sys.stderr)
        return 1

    base_speedups = _speedups(baseline)
    fresh_speedups = _speedups(fresh)
    common = sorted(set(base_speedups) & set(fresh_speedups))
    if not common:
        print("check_search_trajectory: no common worker counts between "
              f"baseline {sorted(base_speedups)} and fresh "
              f"{sorted(fresh_speedups)}", file=sys.stderr)
        return 2

    failed = False
    for workers in common:
        committed = base_speedups[workers]
        measured = fresh_speedups[workers]
        floor = committed * (1.0 - args.tolerance)
        ok = measured >= floor
        failed = failed or not ok
        print(f"workers={workers}: committed {committed:.2f}x, "
              f"measured {measured:.2f}x, floor {floor:.2f}x "
              f"[{'ok' if ok else 'REGRESSED'}]")
    if failed:
        print(f"FAIL: search speedup regressed by more than "
              f"{args.tolerance:.0%} vs the committed baseline "
              f"({args.baseline}). If the slowdown is an accepted "
              "trade-off, regenerate the baseline with `make bench-search` "
              "and commit it alongside the change.", file=sys.stderr)
        return 1
    print("search-acceleration trajectory ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
