"""Perf-trajectory guard: committed benchmark speedups must not rot.

Compares a fresh CI benchmark report against its committed baseline at
the repo root and fails when any speedup regressed by more than
``--tolerance`` (default 20%). Originally written for the §4e
search-acceleration report (``BENCH_search.json``); it now guards any
report with the common shape:

* ``runs`` — a list of dicts, each carrying ``speedup_vs_baseline``
  plus a key identifying the run (``workers`` for the search sweep,
  ``scenario`` for the §4h fast-forward kernel's ``BENCH_kernel.json``).
* top-level ``*_parity`` booleans — exactness witnesses (placement
  parity for the search layer, record parity for the kernel). A fresh
  run with any parity flag false fails outright: a fast-but-wrong run
  is not a performance data point.

The comparison is deliberately a *ratio of ratios*: absolute seconds
differ across runners and across quick/full workload sizes, but the
accelerated-vs-reference speedup is measured within one run on one
machine, so it transfers. A >20% drop means the optimization layer
itself lost ground — a cache that stopped hitting, pruning that stopped
firing, macro runs that stopped forming — not that the runner was slow.

Usage (what CI runs; ``--baseline``/``--fresh`` pairs repeat)::

    python benchmarks/check_search_trajectory.py \
        --baseline BENCH_search.json --fresh BENCH_search_ci.json \
        --baseline BENCH_kernel.json --fresh BENCH_kernel_ci.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_search.json"

#: Keys that identify a run within a report's ``runs`` list, in
#: precedence order.
_RUN_KEYS = ("workers", "scenario", "label", "name")


def _run_label(run: dict, index: int) -> str:
    for key in _RUN_KEYS:
        if key in run:
            return f"{key}={run[key]}"
    return f"run[{index}]"


def _speedups(report: dict) -> "dict[str, float]":
    out = {}
    for index, run in enumerate(report.get("runs", [])):
        speedup = run.get("speedup_vs_baseline")
        if speedup is not None:
            out[_run_label(run, index)] = float(speedup)
    return out


def _failed_parity_keys(report: dict) -> "list[str]":
    return sorted(
        key
        for key, value in report.items()
        if key.endswith("parity") and not value
    )


def check_pair(baseline_path: str, fresh_path: str, tolerance: float) -> int:
    """Compare one committed/fresh report pair; return an exit code."""
    try:
        baseline = json.loads(Path(baseline_path).read_text())
        fresh = json.loads(Path(fresh_path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_search_trajectory: cannot read report: {exc}",
              file=sys.stderr)
        return 2

    broken = _failed_parity_keys(fresh)
    if broken:
        print(f"FAIL: fresh run {fresh_path} broke {', '.join(broken)} — "
              "the optimized path returned different results than the "
              "reference one", file=sys.stderr)
        return 1

    base_speedups = _speedups(baseline)
    fresh_speedups = _speedups(fresh)
    common = sorted(set(base_speedups) & set(fresh_speedups))
    if not common:
        print("check_search_trajectory: no common runs between "
              f"baseline {sorted(base_speedups)} and fresh "
              f"{sorted(fresh_speedups)}", file=sys.stderr)
        return 2

    failed = False
    for label in common:
        committed = base_speedups[label]
        measured = fresh_speedups[label]
        floor = committed * (1.0 - tolerance)
        ok = measured >= floor
        failed = failed or not ok
        print(f"{label}: committed {committed:.2f}x, "
              f"measured {measured:.2f}x, floor {floor:.2f}x "
              f"[{'ok' if ok else 'REGRESSED'}]")
    if failed:
        print(f"FAIL: speedup regressed by more than {tolerance:.0%} vs "
              f"the committed baseline ({baseline_path}). If the slowdown "
              "is an accepted trade-off, regenerate the baseline "
              "(`make bench-search` / `make bench-kernel`) and commit it "
              "alongside the change.", file=sys.stderr)
        return 1
    print(f"trajectory ok ({baseline_path} vs {fresh_path})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", action="append", default=None,
                        help="committed report; repeatable, pairs with the "
                             f"matching --fresh (default: {DEFAULT_BASELINE})")
    parser.add_argument("--fresh", action="append", required=True,
                        help="report produced by this CI run; repeatable")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="max tolerated fractional speedup regression")
    args = parser.parse_args(argv)

    baselines = args.baseline or [str(DEFAULT_BASELINE)]
    if len(baselines) != len(args.fresh):
        print(f"check_search_trajectory: {len(baselines)} --baseline vs "
              f"{len(args.fresh)} --fresh; pass one baseline per fresh "
              "report", file=sys.stderr)
        return 2

    worst = 0
    for baseline_path, fresh_path in zip(baselines, args.fresh):
        worst = max(worst, check_pair(baseline_path, fresh_path,
                                      args.tolerance))
    return worst


if __name__ == "__main__":
    sys.exit(main())
