"""Extension benches: convoy-effect mitigation and fault propagation.

Both are future-work items the paper names in §4.3:

1. **Convoy effect**: "the FCFS policy can lead to a 'convoy effect',
   where longer requests block shorter ones in the prefill stage.
   Incorporating preemptive strategies could enhance efficiency." We
   compare FCFS against aged shortest-job-first on a long-tailed
   (summarization-like) prompt mix.
2. **Fault propagation**: "a fault in a single decoding instance ...
   could potentially cripple the entire service." We kill one decode
   instance mid-run and quantify the recompute burst and latency spike.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table, tpot_percentile, ttft_percentile
from repro.latency import ParallelismConfig
from repro.models import get_model
from repro.serving import DisaggregatedSystem
from repro.simulator import InstanceSpec, PrefillInstance, RequestState, Simulation
from repro.workload import LONGBENCH, SHAREGPT, generate_trace

MODEL = get_model("opt-13b")
SPEC = InstanceSpec(model=MODEL, config=ParallelismConfig(2, 1))


def run_convoy():
    """P90/P99 prefill TTFT under FCFS vs SJF on long-tailed prompts."""
    trace = generate_trace(
        LONGBENCH, rate=1.1, num_requests=300, rng=np.random.default_rng(0)
    )
    out = {}
    for policy in ("fcfs", "sjf"):
        sim = Simulation()
        done = []
        inst = PrefillInstance(
            sim, SPEC,
            on_prefill_done=lambda s: (done.append(s), inst.release_kv(s.request_id)),
            queue_policy=policy,
        )
        for req in trace:
            sim.schedule_at(
                req.arrival_time, lambda r=req: inst.submit(RequestState(request=r))
            )
        sim.run(max_events=3_000_000)
        ttfts = np.array(
            [s.timestamps["prefill_end"] - s.request.arrival_time for s in done]
        )
        out[policy] = {
            "completed": len(done),
            "p50": float(np.percentile(ttfts, 50)),
            "p90": float(np.percentile(ttfts, 90)),
            "p99": float(np.percentile(ttfts, 99)),
        }
    return out


def run_fault():
    """Latency with and without a mid-run decode-instance failure."""
    spec = InstanceSpec(model=MODEL, config=ParallelismConfig(1, 1))
    trace = generate_trace(
        SHAREGPT, rate=8.0, num_requests=400, rng=np.random.default_rng(1)
    )
    out = {}
    for inject in (False, True):
        sim = Simulation()
        system = DisaggregatedSystem(
            sim, spec, spec, num_prefill=2, num_decode=2
        )
        for req in trace:
            sim.schedule_at(req.arrival_time, lambda r=req: system.submit(r))
        if inject:
            sim.schedule(trace.duration / 2, lambda: system.fail_decode("decode-0"))
        sim.run(max_events=5_000_000)
        out[inject] = {
            "completed": len(system.records),
            "p90_ttft": ttft_percentile(system.records),
            "p90_tpot": tpot_percentile(system.records),
            "max_tpot": max(r.tpot for r in system.records),
            "prefill_batches": sum(
                p.batches_executed for p in system.prefill_instances
            ),
        }
    return out


def test_ext_convoy_effect(benchmark):
    out = benchmark.pedantic(run_convoy, rounds=1, iterations=1)
    rows = [
        [policy, d["completed"], d["p50"], d["p90"], d["p99"]]
        for policy, d in out.items()
    ]
    print()
    print(
        format_table(
            ["policy", "completed", "p50 TTFT", "p90 TTFT", "p99 TTFT"],
            rows,
            title="Extension: convoy mitigation (long-tailed prompts, prefill only)",
        )
    )
    assert out["fcfs"]["completed"] == out["sjf"]["completed"] == 300
    # SJF improves the median and does not catastrophically hurt the tail
    # (aging bounds starvation).
    assert out["sjf"]["p50"] < out["fcfs"]["p50"]
    assert out["sjf"]["p99"] < 3.0 * out["fcfs"]["p99"]


def test_ext_fault_propagation(benchmark):
    out = benchmark.pedantic(run_fault, rounds=1, iterations=1)
    rows = [
        [
            "with decode failure" if inject else "clean run",
            d["completed"],
            d["p90_ttft"],
            d["p90_tpot"],
            d["max_tpot"],
            d["prefill_batches"],
        ]
        for inject, d in out.items()
    ]
    print()
    print(
        format_table(
            ["scenario", "completed", "p90 TTFT", "p90 TPOT", "max TPOT", "prefill batches"],
            rows,
            title="Extension: decode-failure fault propagation",
        )
    )
    clean, faulty = out[False], out[True]
    # No request is lost, but victims pay: recompute burst on the prefill
    # pool and a visible TPOT spike.
    assert faulty["completed"] == clean["completed"] == 400
    assert faulty["prefill_batches"] > clean["prefill_batches"]
    assert faulty["max_tpot"] > 1.5 * clean["max_tpot"]
