"""Table 2: simulator accuracy against the (emulated) real system.

The paper validates its discrete-event simulator against testbed runs:
SLO attainment for vLLM and DistServe-Low at rates 1.0-4.0 req/s, with
errors under 2%. Our "real system" substitute is the same engine with
per-batch execution-time jitter enabled (kernel variance, scheduler
noise) and a different arrival-sample seed — the two noise sources a
deterministic simulator abstracts away.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis import format_table, slo_attainment
from repro.hardware import NVLINK
from repro.latency import ParallelismConfig
from repro.models import get_model
from repro.serving import ColocatedSystem, DisaggregatedSystem, simulate_trace
from repro.simulator import InstanceSpec, Simulation
from repro.workload import SLO, generate_trace, get_dataset

MODEL = get_model("opt-13b")
SLO_T2 = SLO(ttft=0.4, tpot=0.1)
RATES = [1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0]
N = 400
JITTER = 0.06  # ~6% kernel/scheduler noise for the emulated testbed


def _attainment(factory, rate, seed):
    dataset = get_dataset("sharegpt")
    trace = generate_trace(dataset, rate, N, np.random.default_rng(seed))
    sim = Simulation()
    res = simulate_trace(factory(sim), trace, max_events=5_000_000)
    return slo_attainment(res.records, SLO_T2, num_expected=len(trace)).total


def run_table2():
    spec = InstanceSpec(model=MODEL, config=ParallelismConfig(1, 1))
    spec_real = dataclasses.replace(spec, jitter_sigma=JITTER)

    def vllm(s):
        def factory(sim):
            return ColocatedSystem(sim, s)

        return factory

    def dist(s):
        def factory(sim):
            return DisaggregatedSystem(
                sim, s, s, num_prefill=2, num_decode=1, transfer_link=NVLINK
            )

        return factory

    rows = []
    for rate in RATES:
        # The disaggregated unit has 3 GPUs; drive it at 3x the per-GPU
        # rate so both systems see comparable per-GPU load. The paper
        # replays the *same* request trace on the testbed and in the
        # simulator, so both sides share one arrival sample and only the
        # execution-time jitter differs.
        row = [rate]
        for kind in (vllm, dist):
            driven = rate * (3 if kind is dist else 1)
            real = _attainment(kind(spec_real), driven, seed=0)
            sim_att = _attainment(kind(spec), driven, seed=0)
            row.extend([real, sim_att, abs(real - sim_att)])
        rows.append(row)
    return rows


def test_tab2_simulator_accuracy(benchmark):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    print()
    print(
        format_table(
            [
                "rate (req/s)",
                "vLLM real",
                "vLLM sim",
                "vLLM err",
                "Dist real",
                "Dist sim",
                "Dist err",
            ],
            rows,
            title="Table 2: simulator vs emulated real system (SLO attainment)",
        )
    )
    errors = [max(r[3], r[6]) for r in rows]
    print(f"\nmax attainment error: {max(errors):.3f} (paper: < 0.02)")
    # The deterministic simulator tracks the jittered system closely.
    assert max(errors) < 0.05
    # Attainment decreases with rate for the colocated system (the
    # Table 2 trend) — allow small non-monotonic wiggles.
    vllm_sim = [r[2] for r in rows]
    assert vllm_sim[0] > vllm_sim[-1]
