"""Figure 11: ablation — vLLM, vLLM++, DistServe-Low, DistServe-High.

OPT-13B on ShareGPT. ``vLLM++`` enumerates the colocated system's
parallelism instead of taking the paper default; the paper finds it ties
plain vLLM (parallelism cannot fix interference). DistServe-High
(Algorithm 1, unconstrained placement) should meet or beat
DistServe-Low (Algorithm 2, stage-colocated placement).
"""

from __future__ import annotations

from functools import partial

from benchmarks.common import distserve_placement, vllm_system_factory
from repro.analysis import format_table
from repro.core import build_system, max_goodput
from repro.hardware import high_affinity_cluster, paper_testbed
from repro.latency import ParallelismConfig
from repro.models import get_model
from repro.serving import ColocatedSystem
from repro.simulator import InstanceSpec
from repro.workload import get_dataset, get_workload

MODEL_NAME = "opt-13b"
N = 150


def _colocated_goodput(tp, pp, dataset, slo):
    model = get_model(MODEL_NAME)
    spec = InstanceSpec(model=model, config=ParallelismConfig(tp, pp))

    def factory(sim):
        return ColocatedSystem(sim, spec)

    result = max_goodput(factory, dataset, slo, num_requests=N)
    return result.goodput / spec.num_gpus


def run_figure11():
    workload = get_workload("chatbot", MODEL_NAME)
    dataset = get_dataset(workload.dataset_name)
    slo = workload.slo
    model = get_model(MODEL_NAME)

    # vLLM: the paper's default parallelism (tp=1 for 13B).
    vllm = _colocated_goodput(1, 1, dataset, slo)

    # vLLM++: enumerate colocated parallelism, keep the best per-GPU.
    candidates = [(1, 1), (2, 1), (4, 1), (2, 2)]
    vllm_pp_all = {
        cfg: _colocated_goodput(cfg[0], cfg[1], dataset, slo) for cfg in candidates
    }
    vllm_plus = max(vllm_pp_all.values())

    # DistServe-Low / High: measure each searched placement's goodput by
    # driving the deployed unit with the full disaggregated simulator.
    results = {}
    for name, low, cluster in (
        ("DistServe-Low", True, paper_testbed()),
        ("DistServe-High", False, high_affinity_cluster()),
    ):
        placement = distserve_placement("chatbot", MODEL_NAME, low_affinity=low)
        factory = partial(build_system, model=model, placement=placement, cluster=cluster)
        got = max_goodput(
            lambda sim: factory(sim), dataset, slo, num_requests=N
        )
        results[name] = (got.goodput / placement.num_gpus, placement)

    return vllm, vllm_plus, vllm_pp_all, results


def test_fig11_ablation(benchmark):
    vllm, vllm_plus, vllm_pp_all, results = benchmark.pedantic(
        run_figure11, rounds=1, iterations=1
    )
    rows = [
        ["vLLM (default tp=1)", vllm, "-"],
        ["vLLM++ (best parallelism)", vllm_plus, "-"],
        [
            "DistServe-Low (Alg. 2)",
            results["DistServe-Low"][0],
            results["DistServe-Low"][1].describe(),
        ],
        [
            "DistServe-High (Alg. 1)",
            results["DistServe-High"][0],
            results["DistServe-High"][1].describe(),
        ],
    ]
    print()
    print(
        format_table(
            ["system", "goodput (req/s/GPU)", "placement"],
            rows,
            title="Figure 11: ablation, OPT-13B on ShareGPT",
        )
    )
    print("\nvLLM++ per-config goodput/GPU:")
    for cfg, gp in sorted(vllm_pp_all.items()):
        print(f"  tp={cfg[0]} pp={cfg[1]}: {gp:.2f}")

    low = results["DistServe-Low"][0]
    high = results["DistServe-High"][0]
    # Paper findings that hold in our calibration: both DistServe
    # variants beat the paper-default vLLM, and relaxing the placement
    # constraints (High) does not lose much versus Low.
    #
    # Documented deviation (see EXPERIMENTS.md): the paper found
    # vLLM++ ~ vLLM because its 13B default was already
    # parallelism-optimal on their testbed; with our idealized
    # colocated engine, higher TP also fixes the TTFT tail, so vLLM++
    # exceeds vLLM — we print it rather than assert the paper's tie.
    assert low > vllm
    assert vllm_plus >= vllm
    assert high >= 0.5 * low
