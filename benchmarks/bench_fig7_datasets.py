"""Figure 7: input/output length distributions of the three datasets.

Prints summary statistics and coarse histograms of the synthetic
ShareGPT / HumanEval / LongBench length models, which are fitted to the
marginals shown in the paper's Figure 7.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.workload import DATASETS

N = 20_000
PCTS = (10, 50, 90, 99)


def run_figure7():
    rng = np.random.default_rng(7)
    rows = []
    samples = {}
    for name, dataset in sorted(DATASETS.items()):
        ins, outs = dataset.sample_lengths(rng, N)
        samples[name] = (ins, outs)
        for kind, arr in (("input", ins), ("output", outs)):
            rows.append(
                [name, kind, float(arr.mean())]
                + [float(np.percentile(arr, p)) for p in PCTS]
            )
    return rows, samples


def test_fig7_datasets(benchmark):
    rows, samples = benchmark.pedantic(run_figure7, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["dataset", "side", "mean"] + [f"p{p}" for p in PCTS],
            rows,
            title="Figure 7: token-length distributions (synthetic fits)",
            float_fmt="{:.0f}",
        )
    )
    sg_in = samples["sharegpt"][0]
    he_in = samples["humaneval"][0]
    lb_in = samples["longbench"][0]
    # LongBench inputs dwarf the other two (the paper's key observation).
    assert np.mean(lb_in) > 4 * np.mean(sg_in) > 4 * np.mean(he_in) / 4
    assert np.percentile(lb_in, 50) > 1500
    # HumanEval prompts are short and tight.
    assert np.percentile(he_in, 90) < 500
    # ShareGPT outputs are substantial (conversational replies).
    assert np.mean(samples["sharegpt"][1]) > np.mean(samples["humaneval"][1])
