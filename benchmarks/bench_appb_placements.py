"""Appendix B: placements chosen by DistServe for the Table 1 workloads.

The paper tabulates the (TP, PP) pairs its search selected per phase.
Absolute choices depend on the latency model's constants, but structural
properties should match: prefill instances lean on intra-op parallelism
(tight TTFT), decoding instances use fewer GPUs per request served, and
larger models need more aggressive parallelism.
"""

from __future__ import annotations

from benchmarks.common import distserve_placement
from repro.analysis import format_table

PAPER_PLACEMENTS = {
    # (application, model): (prefill TP, PP, decode TP, PP) from App. B.
    ("chatbot", "opt-13b"): (2, 1, 1, 1),
    ("chatbot", "opt-66b"): (4, 1, 2, 2),
    ("code-completion", "opt-66b"): (4, 1, 2, 2),
    ("summarization", "opt-66b"): (4, 1, 2, 2),
    ("chatbot", "opt-175b"): (3, 3, 4, 3),
}


def run_appb():
    rows = []
    placements = {}
    for (application, model_name), paper in PAPER_PLACEMENTS.items():
        plm = distserve_placement(application, model_name)
        placements[(application, model_name)] = plm
        rows.append(
            [
                application,
                model_name,
                f"tp{plm.prefill.config.tp} pp{plm.prefill.config.pp} x{plm.prefill.num_instances}",
                f"tp{plm.decode.config.tp} pp{plm.decode.config.pp} x{plm.decode.num_instances}",
                f"tp{paper[0]} pp{paper[1]}",
                f"tp{paper[2]} pp{paper[3]}",
                f"{plm.per_gpu_goodput:.2f}",
            ]
        )
    return rows, placements


def test_appb_placements(benchmark):
    rows, placements = benchmark.pedantic(run_appb, rounds=1, iterations=1)
    print()
    print(
        format_table(
            [
                "application",
                "model",
                "ours: prefill",
                "ours: decode",
                "paper: prefill",
                "paper: decode",
                "goodput/GPU",
            ],
            rows,
            title="Appendix B: placements chosen by the search",
        )
    )
    # Structural checks shared with the paper's table:
    for (application, model_name), plm in placements.items():
        # Bigger models require more GPUs per instance (memory).
        if model_name == "opt-175b":
            assert plm.prefill.config.num_gpus >= 5
            assert plm.decode.config.num_gpus >= 5
        if model_name == "opt-66b":
            assert plm.prefill.config.num_gpus >= 2
        # Tight-TTFT prefill leans on intra-op parallelism (tp >= 1 and at
        # least as much as decode for the code-completion workload).
        if application == "code-completion":
            assert plm.prefill.config.tp >= plm.decode.config.tp
