"""Figure 10: latency breakdown and KV-transfer CDF (OPT-175B, ShareGPT).

*(a)* The five lifecycle stages' share of total request time — transfer
must account for well under 1% despite the 175B KV caches, because the
low-node-affinity placement pins migrations to NVLink.
*(b)* The CDF of absolute transfer times — the paper reports >95% of
requests under 30 ms even on the 25 Gbps-fabric testbed.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import distserve_system_factory
from repro.analysis import cdf_points, format_table, latency_breakdown
from repro.serving import simulate_trace
from repro.simulator import Simulation
from repro.workload import generate_trace, get_dataset, get_workload

N = 400


def run_figure10():
    workload = get_workload("chatbot", "opt-175b")
    dataset = get_dataset(workload.dataset_name)
    factory, num_gpus, placement = distserve_system_factory("chatbot", "opt-175b")
    # Operate at a moderate utilization point.
    rate = max(0.05, 0.6 * placement.system_goodput)
    trace = generate_trace(dataset, rate, N, np.random.default_rng(0))
    sim = Simulation()
    res = simulate_trace(factory(sim), trace, max_events=8_000_000)
    breakdown = latency_breakdown(res.records)
    durations = [t.duration for t in res.transfer_records]
    return placement, breakdown, durations


def test_fig10_breakdown(benchmark):
    placement, breakdown, durations = benchmark.pedantic(
        run_figure10, rounds=1, iterations=1
    )
    fractions = breakdown.fractions()
    print(f"\nDistServe placement: {placement.describe()}")
    print(
        format_table(
            ["stage", "total seconds", "fraction"],
            [[k, getattr(breakdown, k), v] for k, v in fractions.items()],
            title="Figure 10(a): lifecycle latency breakdown, OPT-175B/ShareGPT",
            float_fmt="{:.4f}",
        )
    )
    xs, ys = cdf_points(durations)
    marks = [0.5, 0.9, 0.95, 0.99]
    rows = [[f"p{int(m * 100)}", float(np.interp(m, ys, xs)) * 1e3] for m in marks]
    print(
        format_table(
            ["percentile", "transfer time (ms)"],
            rows,
            title="Figure 10(b): KV-cache transfer time CDF",
            float_fmt="{:.2f}",
        )
    )
    # The paper's claims: transfer <0.1% of total lifecycle time and >95%
    # of transfers well under 30 ms.
    assert fractions["transfer"] < 0.01
    p95 = float(np.interp(0.95, ys, xs))
    assert p95 < 0.030, f"p95 transfer {p95 * 1e3:.1f} ms"
    # Decode execution dominates the lifecycle (many tokens per request).
    assert fractions["decode_exec"] == max(fractions.values())
