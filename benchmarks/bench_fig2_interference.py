"""Figure 2: prefill-decoding interference in one batch.

Execution time of a single iteration as batch size grows, comparing a
decoding-only batch against the same batch plus one prefill request —
and the slowdown's growth with the prefill's length.
"""

from __future__ import annotations

from repro.analysis import format_series
from repro.hardware import A100_80GB
from repro.latency import coefficients_from_roofline, mixed_batch_latency
from repro.models import get_model

MODEL = get_model("opt-13b")
COEFFS = coefficients_from_roofline(A100_80GB)
BATCH_SIZES = [1, 2, 4, 8, 16, 32, 64, 128]
PREFILL_LENS = [128, 512, 1024]
CONTEXT = 256


def run_figure2():
    decode_only = [
        mixed_batch_latency(MODEL, COEFFS, [], [CONTEXT] * b) for b in BATCH_SIZES
    ]
    with_prefill = {
        plen: [
            mixed_batch_latency(MODEL, COEFFS, [plen], [CONTEXT] * b)
            for b in BATCH_SIZES
        ]
        for plen in PREFILL_LENS
    }
    return decode_only, with_prefill


def test_fig2_interference(benchmark):
    decode_only, with_prefill = benchmark.pedantic(run_figure2, rounds=3, iterations=1)
    series = {"decode-only": decode_only}
    for plen, values in with_prefill.items():
        series[f"+1 prefill({plen})"] = values
    print()
    print(
        format_series(
            "batch",
            BATCH_SIZES,
            series,
            title="Figure 2: batch execution time (s), OPT-13B",
            float_fmt="{:.4f}",
        )
    )
    # Adding one prefill slows every batch size, more for longer prefills,
    # and the absolute decode-vs-mixed gap does not vanish at large batch.
    for i, batch in enumerate(BATCH_SIZES):
        assert with_prefill[128][i] > decode_only[i]
        assert with_prefill[1024][i] > with_prefill[512][i] > with_prefill[128][i]
    slowdown_small = with_prefill[1024][0] / decode_only[0]
    assert slowdown_small > 2.0  # a long prefill dominates a small batch
