"""Fast-forward kernel benchmark: speedup + bitwise parity (BENCH_kernel.json).

Measures the analytical fast-forward kernel (DESIGN.md §4h) against the
per-step reference path on two workloads:

* ``decode_heavy`` — a decode-only trial with long generations, the
  workload the macro-stepper exists for. Acceptance floor: **3x**.
* ``fig12_sweep`` — the Figure 12 placement-search sweep (quick sizes),
  fast kernel on vs. off with otherwise identical settings. The search
  interleaves prefill/decode/joint trials with enumeration and pruning
  overhead, so the floor is lower: **1.5x**.

Every timed scenario also replays its workload on both paths and
asserts *bitwise* record parity (and placement equality for the sweep)
— the speedup numbers are only meaningful if the kernel is exact, so
the report carries ``record_parity``/``placement_parity`` booleans that
``check_search_trajectory.py`` gates on in CI.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core import place_high_affinity
from repro.hardware import Cluster, Node
from repro.models import get_model
from repro.serving import DecodeOnlySystem, DisaggregatedSystem, simulate_trace
from repro.simulator import InstanceSpec, Simulation
from repro.latency import ParallelismConfig
from repro.workload import SLO, get_dataset
from repro.workload.datasets import SyntheticDataset, generate_trace
from repro.workload.distributions import LognormalLength

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

#: Long-generation workload: decode dominates, macro runs get long.
DECODE_HEAVY = SyntheticDataset(
    name="decode-heavy",
    input_dist=LognormalLength(median=256.0, sigma=0.5, low=64, high=1024),
    output_dist=LognormalLength(median=384.0, sigma=0.4, low=128, high=1024),
)

#: Mixed workload for the disaggregated parity replay.
MIXED = SyntheticDataset(
    name="mixed",
    input_dist=LognormalLength(median=192.0, sigma=0.6, low=32, high=768),
    output_dist=LognormalLength(median=48.0, sigma=0.7, low=8, high=256),
)

SWEEP_SLO = SLO(ttft=0.2, tpot=0.1)


def _records(result):
    return sorted(
        (r.request_id, r.ttft, r.tpot, r.finish_time) for r in result.records
    )


def _time_trace(make_system, trace, rounds):
    """Min-of-K wall time of (build system + run trace), plus the records."""
    best = float("inf")
    records = None
    for _ in range(rounds):
        sim = Simulation()
        t0 = time.perf_counter()
        system = make_system(sim)
        result = simulate_trace(system, trace)
        best = min(best, time.perf_counter() - t0)
        records = _records(result)
    return best, records


def bench_decode_heavy(num_requests, rounds):
    """Decode-only trial, fast vs slow; returns (row, parity)."""
    model = get_model("opt-13b")
    spec = InstanceSpec(model=model, config=ParallelismConfig(1, 1))
    trace = generate_trace(
        DECODE_HEAVY, rate=6.0, num_requests=num_requests,
        rng=np.random.default_rng(0),
    )
    slow_s, slow_records = _time_trace(
        lambda sim: DecodeOnlySystem(sim, spec, fast_kernel=False),
        trace, rounds,
    )
    fast_s, fast_records = _time_trace(
        lambda sim: DecodeOnlySystem(sim, spec, fast_kernel=True),
        trace, rounds,
    )
    row = {
        "scenario": "decode_heavy",
        "num_requests": num_requests,
        "slow_s": round(slow_s, 4),
        "fast_s": round(fast_s, 4),
        "speedup_vs_baseline": round(slow_s / fast_s, 2),
    }
    return row, fast_records == slow_records


def bench_disaggregated_parity(num_requests, rounds):
    """Disaggregated mixed workload: timed, but mainly a parity witness."""
    model = get_model("opt-13b")
    spec = InstanceSpec(model=model, config=ParallelismConfig(1, 1))
    trace = generate_trace(
        MIXED, rate=10.0, num_requests=num_requests,
        rng=np.random.default_rng(1),
    )
    slow_s, slow_records = _time_trace(
        lambda sim: DisaggregatedSystem(
            sim, spec, spec, num_prefill=1, num_decode=2, fast_kernel=False
        ),
        trace, rounds,
    )
    fast_s, fast_records = _time_trace(
        lambda sim: DisaggregatedSystem(
            sim, spec, spec, num_prefill=1, num_decode=2, fast_kernel=True
        ),
        trace, rounds,
    )
    row = {
        "scenario": "disaggregated_mixed",
        "num_requests": num_requests,
        "slow_s": round(slow_s, 4),
        "fast_s": round(fast_s, 4),
        # Deliberately not `speedup_vs_baseline`: this scenario is a
        # parity witness (prefill/transfer interleavings keep macro runs
        # short), and its small ratio is too noisy for the CI trajectory
        # guard to gate on.
        "speedup": round(slow_s / fast_s, 2),
    }
    return row, fast_records == slow_records


def bench_fig12_sweep(num_requests):
    """Quick Figure 12 placement sweep, fast kernel on vs off.

    Caching/pruning/early-abort stay at their defaults on *both* sides —
    the only variable is the kernel — and the returned placements must
    be identical.
    """
    model = get_model("opt-13b")
    dataset = get_dataset("sharegpt")
    sizes = [(1, 2), (1, 4)]
    times = {}
    placements = {}
    for fast in (False, True):
        total = 0.0
        results = []
        for num_nodes, gpn in sizes:
            cluster = Cluster(
                nodes=[Node(index=i, num_gpus=gpn) for i in range(num_nodes)]
            )
            t0 = time.perf_counter()
            try:
                placement = place_high_affinity(
                    model, cluster, dataset, SWEEP_SLO,
                    traffic_rate=None, num_requests=num_requests,
                    trial_cache=False, fast_kernel=fast,
                )
            except RuntimeError:
                placement = None
            total += time.perf_counter() - t0
            results.append(placement)
        times[fast] = total
        placements[fast] = results
    row = {
        "scenario": "fig12_sweep",
        "num_requests": num_requests,
        "cluster_sizes": [f"{n}x{g}" for n, g in sizes],
        "slow_s": round(times[False], 3),
        "fast_s": round(times[True], 3),
        "speedup_vs_baseline": round(times[False] / times[True], 2),
    }
    return row, placements[True] == placements[False]


def run_kernel_bench(num_requests=200, sweep_requests=60, rounds=3):
    heavy_row, heavy_parity = bench_decode_heavy(num_requests, rounds)
    mixed_row, mixed_parity = bench_disaggregated_parity(num_requests, rounds)
    sweep_row, placement_parity = bench_fig12_sweep(sweep_requests)
    return {
        "description": "fast-forward simulation kernel (macro-stepped decode "
                       "+ memoized batch latency) vs per-step reference path",
        "runs": [heavy_row, mixed_row, sweep_row],
        "record_parity": bool(heavy_parity and mixed_parity),
        "placement_parity": bool(placement_parity),
    }


def test_kernel_speedup(benchmark):
    # Full-size trial traces (short startup/drain phases dilute the
    # ratio); only the placement sweep is shortened for CI budget.
    report = benchmark.pedantic(
        lambda: run_kernel_bench(num_requests=200, sweep_requests=40, rounds=3),
        rounds=1, iterations=1,
    )
    print()
    print(json.dumps(report, indent=2))
    # Exactness first: the speedup is meaningless if results changed.
    assert report["record_parity"]
    assert report["placement_parity"]
    runs = {run["scenario"]: run for run in report["runs"]}
    assert runs["decode_heavy"]["speedup_vs_baseline"] >= 3.0
    assert runs["fig12_sweep"]["speedup_vs_baseline"] >= 1.5


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--requests", type=int, default=200,
        help="trace length for the trial scenarios (default: 200)",
    )
    parser.add_argument(
        "--sweep-requests", type=int, default=60,
        help="trace length per placement-search trial (default: 60)",
    )
    parser.add_argument(
        "--rounds", type=int, default=3,
        help="timing repetitions per scenario, min taken (default: 3)",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help=f"output JSON path (default: {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)
    report = run_kernel_bench(
        num_requests=args.requests, sweep_requests=args.sweep_requests,
        rounds=args.rounds,
    )
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    for run in report["runs"]:
        ratio = run.get("speedup_vs_baseline", run.get("speedup"))
        print(
            f"{run['scenario']}: slow {run['slow_s']}s, fast {run['fast_s']}s "
            f"-> {ratio}x"
        )
    print(f"record parity: {report['record_parity']}, "
          f"placement parity: {report['placement_parity']}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
